package faults_test

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"odyssey/internal/core"
	"odyssey/internal/faults"
	"odyssey/internal/netsim"
	"odyssey/internal/sim"
	"odyssey/internal/smartbattery"
	"odyssey/internal/supervise"
)

// stubApp is a minimal core.Adaptive for binding app injectors in tests.
type stubApp struct {
	name   string
	level  int
	health supervise.AppHealth
}

func (s *stubApp) Name() string     { return s.name }
func (s *stubApp) Levels() []string { return []string{"lo", "mid", "hi"} }
func (s *stubApp) Level() int       { return s.level }
func (s *stubApp) SetLevel(l int)   { s.level = l }

// stubTargets resolves spec targets against a fixed rig for tests.
type stubTargets struct {
	net     *netsim.Network
	servers map[string]*netsim.Server
	bat     *smartbattery.Battery
	apps    map[string]*stubApp
}

func (t *stubTargets) Network() *netsim.Network { return t.net }
func (t *stubTargets) Server(name string) (*netsim.Server, bool) {
	s, ok := t.servers[name]
	return s, ok
}
func (t *stubTargets) Battery() *smartbattery.Battery { return t.bat }
func (t *stubTargets) App(name string) (core.Adaptive, *supervise.AppHealth, bool) {
	a, ok := t.apps[name]
	if !ok {
		return nil, nil, false
	}
	return a, &a.health, true
}

func newSpecRig(seed int64) (*sim.Kernel, *stubTargets) {
	m, n := newRig(seed)
	srv := netsim.NewServer(m.K, "srv-a")
	bat := smartbattery.New(m.K, m.Acct, smartbattery.DefaultConfig(), 10_000)
	return m.K, &stubTargets{
		net:     n,
		servers: map[string]*netsim.Server{"srv-a": srv},
		bat:     bat,
		apps:    map[string]*stubApp{"video": {name: "video"}},
	}
}

// allKindsSpec exercises every injector kind with every parameter field.
func allKindsSpec() faults.PlanSpec {
	return faults.PlanSpec{
		Name: "round-trip",
		Seed: 987,
		Injectors: []faults.InjectorSpec{
			{Kind: faults.KindLink, MeanUp: faults.Dur(30 * time.Second), MeanDown: faults.Dur(5 * time.Second), MaxDown: faults.Dur(20 * time.Second)},
			{Kind: faults.KindLoss, Fraction: 0.2, Spread: 0.1},
			{Kind: faults.KindServerCrash, Target: "srv-a", MeanUp: faults.Dur(time.Minute), MeanDown: faults.Dur(8 * time.Second), MaxDown: faults.Dur(45 * time.Second)},
			{Kind: faults.KindServerLatency, Target: "srv-a", MeanUp: faults.Dur(40 * time.Second), MeanDown: faults.Dur(10 * time.Second), Factor: 4.5},
			{Kind: faults.KindBatteryDropout, MeanUp: faults.Dur(90 * time.Second), MeanDown: faults.Dur(2 * time.Second)},
			{Kind: faults.KindAppCrash, Target: "video", MeanUp: faults.Dur(2 * time.Minute)},
			{Kind: faults.KindAppHang, Target: "video", MeanUp: faults.Dur(80 * time.Second), MeanDown: faults.Dur(10 * time.Second), MaxDown: faults.Dur(time.Minute)},
			{Kind: faults.KindAppThrash, Target: "video", MeanUp: faults.Dur(80 * time.Second), MeanDown: faults.Dur(20 * time.Second), Period: faults.Dur(3 * time.Second)},
			{Kind: faults.KindAppLie, Target: "video", MeanUp: faults.Dur(80 * time.Second), MeanDown: faults.Dur(30 * time.Second), Delta: 2},
		},
	}
}

// TestPlanSpecJSONRoundTrip: spec -> materialized plan -> JSON -> decoded
// plan -> materialized -> spec is the identity, for every injector kind and
// every parameter field.
func TestPlanSpecJSONRoundTrip(t *testing.T) {
	k, tg := newSpecRig(1)
	spec := allKindsSpec()
	pl, err := spec.Plan(k, tg)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if got := pl.Spec(); !reflect.DeepEqual(got, spec) {
		t.Fatalf("live plan spec diverged:\n got %+v\nwant %+v", got, spec)
	}
	b, err := json.Marshal(pl)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded faults.Plan
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got := decoded.Spec(); !reflect.DeepEqual(got, spec) {
		t.Fatalf("decoded (pending) spec diverged:\n got %+v\nwant %+v", got, spec)
	}
	if decoded.Seed() != spec.Seed {
		t.Fatalf("seed %d after round trip, want %d", decoded.Seed(), spec.Seed)
	}
	k2, tg2 := newSpecRig(2)
	if err := decoded.Materialize(k2, tg2); err != nil {
		t.Fatalf("materialize decoded plan: %v", err)
	}
	if got := decoded.Spec(); !reflect.DeepEqual(got, spec) {
		t.Fatalf("re-materialized spec diverged:\n got %+v\nwant %+v", got, spec)
	}
	if err := decoded.Materialize(k2, tg2); err == nil {
		t.Fatal("second Materialize succeeded; want already-materialized error")
	}
	// Second marshal must be byte-identical (stable serialization).
	b2, err := json.Marshal(&decoded)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(b) != string(b2) {
		t.Fatalf("unstable serialization:\n %s\n %s", b, b2)
	}
}

// TestDurRoundTrip: the Dur JSON form survives odd durations exactly.
func TestDurRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{0, time.Millisecond, 1500 * time.Millisecond,
		time.Duration(4749_000_001), 90 * time.Second, 2*time.Hour + 3*time.Nanosecond} {
		b, err := json.Marshal(faults.Dur(d))
		if err != nil {
			t.Fatal(err)
		}
		var got faults.Dur
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got.D() != d {
			t.Fatalf("%v -> %s -> %v", d, b, got.D())
		}
	}
	var bad faults.Dur
	if err := json.Unmarshal([]byte(`"not-a-duration"`), &bad); err == nil {
		t.Fatal("bad duration string decoded without error")
	}
}

// TestSpecBuildErrors: unknown kinds and unresolvable targets are errors,
// never panics — a malformed spec must fail one trial, not a soak worker.
func TestSpecBuildErrors(t *testing.T) {
	k, tg := newSpecRig(3)
	cases := []faults.InjectorSpec{
		{Kind: "warp-core-breach"},
		{Kind: faults.KindServerCrash, Target: "no-such-server"},
		{Kind: faults.KindServerLatency, Target: "no-such-server"},
		{Kind: faults.KindAppCrash, Target: "no-such-app"},
		{Kind: faults.KindAppLie, Target: "no-such-app"},
	}
	for _, is := range cases {
		if _, err := is.Build(tg); err == nil {
			t.Errorf("Build(%+v) succeeded; want error", is)
		}
		spec := faults.PlanSpec{Name: "bad", Seed: 1, Injectors: []faults.InjectorSpec{is}}
		if _, err := spec.Plan(k, tg); err == nil {
			t.Errorf("PlanSpec with %+v materialized; want error", is)
		}
	}
	// Battery-dropout without a battery is an error too.
	noBat := &stubTargets{net: tg.net, servers: tg.servers, apps: tg.apps}
	if _, err := (faults.InjectorSpec{Kind: faults.KindBatteryDropout}).Build(noBat); err == nil {
		t.Error("battery-dropout built without a battery")
	}
}

// TestSpecReplayDeterminism: a plan rebuilt from its JSON on a fresh rig
// draws the identical fault schedule — same event counts at every key.
func TestSpecReplayDeterminism(t *testing.T) {
	run := func(spec faults.PlanSpec) map[string]int {
		k, tg := newSpecRig(7)
		pl, err := spec.Plan(k, tg)
		if err != nil {
			t.Fatalf("materialize: %v", err)
		}
		pl.Start()
		k.At(8*time.Minute, func() { k.Stop() })
		k.Run(0)
		pl.Stop()
		_, counts := pl.Counts()
		return counts
	}
	spec := allKindsSpec()
	first := run(spec)
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var decoded faults.PlanSpec
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	second := run(decoded)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("replayed plan diverged:\n got %v\nwant %v", second, first)
	}
	if len(first) == 0 {
		t.Fatal("no fault events in 8 minutes; schedule not exercising injectors")
	}
}
