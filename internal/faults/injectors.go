package faults

import (
	"time"

	"odyssey/internal/netsim"
	"odyssey/internal/smartbattery"
)

// LinkOutage drops the wireless carrier entirely — the connectivity-loss
// events the fade model (netsim.LinkQuality) cannot express. Up and down
// dwell times are exponential with the given means; MaxDown, if positive,
// caps a single outage. Attaching it arms the resilient transfer layer.
type LinkOutage struct {
	Net      *netsim.Network
	MeanUp   time.Duration
	MeanDown time.Duration
	MaxDown  time.Duration

	t         toggler
	outages   int
	downSince time.Duration
	downTotal time.Duration
}

// Name implements Injector.
func (o *LinkOutage) Name() string { return "link" }

// Spec implements Injector.
func (o *LinkOutage) Spec() InjectorSpec {
	return InjectorSpec{Kind: KindLink, MeanUp: Dur(o.MeanUp), MeanDown: Dur(o.MeanDown), MaxDown: Dur(o.MaxDown)}
}

// Start implements Injector.
func (o *LinkOutage) Start(pl *Plan) {
	o.Net.SetResilient(true)
	o.t = toggler{
		meanOK:  o.MeanUp,
		meanBad: o.MeanDown,
		maxBad:  o.MaxDown,
		enter: func() {
			o.outages++
			o.downSince = pl.k.Now()
			o.Net.SetLinkUp(false)
			pl.event(o.Name(), "outage begin", float64(o.outages))
		},
		exit: func() {
			o.downTotal += pl.k.Now() - o.downSince
			o.Net.SetLinkUp(true)
			pl.event(o.Name(), "outage end", o.downTotal.Seconds())
		},
	}
	o.t.start(pl)
}

// Stop implements Injector, restoring the carrier if an outage is active.
func (o *LinkOutage) Stop() { o.t.stop() }

// Outages reports how many outages began.
func (o *LinkOutage) Outages() int { return o.outages }

// DownTime reports accumulated carrier-absent time (completed outages).
func (o *LinkOutage) DownTime() time.Duration { return o.downTotal }

// ByteLoss makes every transfer lose a fraction of its bytes to the
// channel, inflating traffic by the retransmission factor 1/(1-loss); the
// extra bytes and their CPU are charged to the net-retry principal. The
// per-transfer fraction is Fraction spread uniformly by +/- Spread.
type ByteLoss struct {
	Net      *netsim.Network
	Fraction float64
	Spread   float64

	armed bool
}

// Name implements Injector.
func (b *ByteLoss) Name() string { return "loss" }

// Spec implements Injector.
func (b *ByteLoss) Spec() InjectorSpec {
	return InjectorSpec{Kind: KindLoss, Fraction: b.Fraction, Spread: b.Spread}
}

// Start implements Injector.
func (b *ByteLoss) Start(pl *Plan) {
	if b.armed {
		return
	}
	b.armed = true
	b.Net.SetResilient(true)
	b.Net.SetLossSampler(func() float64 {
		f := b.Fraction
		if b.Spread > 0 {
			f *= 1 + b.Spread*(2*pl.rng.Float64()-1)
		}
		if f < 0 {
			f = 0
		}
		return f
	})
	pl.event(b.Name(), "byte loss armed", b.Fraction)
}

// Stop implements Injector, restoring losslessness.
func (b *ByteLoss) Stop() {
	if !b.armed {
		return
	}
	b.armed = false
	b.Net.SetLossSampler(nil)
}

// ServerCrash takes a remote server through crash/recover windows. While
// down, deadline-aware calls time out with ErrServerDown. Net, if set, is
// armed resilient so clients actually honor deadlines against this server.
type ServerCrash struct {
	Server   *netsim.Server
	Net      *netsim.Network
	MeanUp   time.Duration
	MeanDown time.Duration
	MaxDown  time.Duration
	// Pool, when non-nil, marks a symbolic TargetAnyPool injector: the
	// victim Server is drawn from it with the plan's seeded RNG at Start
	// (one draw, before the toggler's), so which member crashes is
	// deterministic per seed and the spec round-trips symbolically.
	Pool []*netsim.Server

	t       toggler
	crashes int
}

// Name implements Injector.
func (c *ServerCrash) Name() string {
	if c.Server == nil {
		return "server:" + TargetAnyPool
	}
	return "server:" + c.Server.Name
}

// Spec implements Injector.
func (c *ServerCrash) Spec() InjectorSpec {
	target := TargetAnyPool
	if c.Pool == nil {
		target = c.Server.Name
	}
	return InjectorSpec{Kind: KindServerCrash, Target: target,
		MeanUp: Dur(c.MeanUp), MeanDown: Dur(c.MeanDown), MaxDown: Dur(c.MaxDown)}
}

// Start implements Injector.
func (c *ServerCrash) Start(pl *Plan) {
	if c.Server == nil && len(c.Pool) > 0 {
		c.Server = c.Pool[pl.Rand().Intn(len(c.Pool))]
		pl.event(c.Name(), "pool victim", float64(0))
	}
	if c.Net != nil {
		c.Net.SetResilient(true)
	}
	c.t = toggler{
		meanOK:  c.MeanUp,
		meanBad: c.MeanDown,
		maxBad:  c.MaxDown,
		enter: func() {
			c.crashes++
			c.Server.SetDown(true)
			pl.event(c.Name(), "crash", float64(c.crashes))
		},
		exit: func() {
			c.Server.SetDown(false)
			pl.event(c.Name(), "recover", float64(c.crashes))
		},
	}
	c.t.start(pl)
}

// Stop implements Injector, recovering the server if it is down.
func (c *ServerCrash) Stop() { c.t.stop() }

// Crashes reports how many crash windows began.
func (c *ServerCrash) Crashes() int { return c.crashes }

// ServerLatency injects service-time spikes: during a spike every request
// to the server takes Factor times as long, modeling overload or a
// congested backhaul.
type ServerLatency struct {
	Server    *netsim.Server
	Net       *netsim.Network
	MeanCalm  time.Duration
	MeanSpike time.Duration
	Factor    float64
	// Pool marks a symbolic TargetAnyPool injector; see ServerCrash.Pool.
	Pool []*netsim.Server

	t      toggler
	spikes int
}

// Name implements Injector.
func (l *ServerLatency) Name() string {
	if l.Server == nil {
		return "latency:" + TargetAnyPool
	}
	return "latency:" + l.Server.Name
}

// Spec implements Injector.
func (l *ServerLatency) Spec() InjectorSpec {
	target := TargetAnyPool
	if l.Pool == nil {
		target = l.Server.Name
	}
	return InjectorSpec{Kind: KindServerLatency, Target: target,
		MeanUp: Dur(l.MeanCalm), MeanDown: Dur(l.MeanSpike), Factor: l.Factor}
}

// Start implements Injector.
func (l *ServerLatency) Start(pl *Plan) {
	if l.Server == nil && len(l.Pool) > 0 {
		l.Server = l.Pool[pl.Rand().Intn(len(l.Pool))]
		pl.event(l.Name(), "pool victim", float64(0))
	}
	if l.Net != nil {
		l.Net.SetResilient(true)
	}
	l.t = toggler{
		meanOK:  l.MeanCalm,
		meanBad: l.MeanSpike,
		enter: func() {
			l.spikes++
			l.Server.SetLatencyFactor(l.Factor)
			pl.event(l.Name(), "spike begin", l.Factor)
		},
		exit: func() {
			l.Server.SetLatencyFactor(1)
			pl.event(l.Name(), "spike end", float64(l.spikes))
		},
	}
	l.t.start(pl)
}

// Stop implements Injector, restoring calm service times.
func (l *ServerLatency) Stop() { l.t.stop() }

// Spikes reports how many latency spikes began.
func (l *ServerLatency) Spikes() int { return l.spikes }

// BatteryDropout faults the SmartBattery readout path: while active,
// current reads zero (the monitor skips the sample) and residual capacity
// goes stale, so goal-directed adaptation runs on old data.
type BatteryDropout struct {
	Bat      *smartbattery.Battery
	MeanUp   time.Duration
	MeanDown time.Duration

	t        toggler
	dropouts int
}

// Name implements Injector.
func (d *BatteryDropout) Name() string { return "battery" }

// Spec implements Injector.
func (d *BatteryDropout) Spec() InjectorSpec {
	return InjectorSpec{Kind: KindBatteryDropout, MeanUp: Dur(d.MeanUp), MeanDown: Dur(d.MeanDown)}
}

// Start implements Injector.
func (d *BatteryDropout) Start(pl *Plan) {
	d.t = toggler{
		meanOK:  d.MeanUp,
		meanBad: d.MeanDown,
		enter: func() {
			d.dropouts++
			d.Bat.SetDropout(true)
			pl.event(d.Name(), "dropout begin", float64(d.dropouts))
		},
		exit: func() {
			d.Bat.SetDropout(false)
			pl.event(d.Name(), "dropout end", float64(d.dropouts))
		},
	}
	d.t.start(pl)
}

// Stop implements Injector, restoring the readout path.
func (d *BatteryDropout) Stop() { d.t.stop() }

// Dropouts reports how many readout dropouts began.
func (d *BatteryDropout) Dropouts() int { return d.dropouts }
