package faults

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"odyssey/internal/core"
	"odyssey/internal/netsim"
	"odyssey/internal/sim"
	"odyssey/internal/smartbattery"
	"odyssey/internal/supervise"
)

// Plan serialization. A running Plan holds live pointers into one trial's
// rig (the network, the servers, a SmartBattery, the applications), so a
// plan cannot round-trip through JSON by itself: what serializes is the
// injector *specification* — kind, target name, and timing parameters — and
// deserialization yields a pending plan that Materialize binds to a fresh
// rig through the Targets interface. Spec -> JSON -> spec -> Materialize is
// exact: the spec carries the plan's seed, so a replayed plan draws the
// identical fault schedule.

// Dur is a time.Duration that marshals as its String form ("2m10s"). The
// round trip is exact: ParseDuration inverts String for every duration.
type Dur time.Duration

// D returns the underlying time.Duration.
func (d Dur) D() time.Duration { return time.Duration(d) }

// MarshalJSON implements json.Marshaler.
func (d Dur) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Dur) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("faults: bad duration %q: %w", s, err)
	}
	*d = Dur(v)
	return nil
}

// Injector spec kinds.
const (
	KindLink           = "link-outage"
	KindLoss           = "byte-loss"
	KindServerCrash    = "server-crash"
	KindServerLatency  = "server-latency"
	KindBatteryDropout = "battery-dropout"
	KindAppCrash       = "app-crash"
	KindAppHang        = "app-hang"
	KindAppThrash      = "app-thrash"
	KindAppLie         = "app-lie"
)

// InjectorSpec is the serializable description of one injector. Fields are
// reused across kinds: MeanUp/MeanDown are the healthy/faulted dwell means
// (calm/spike for latency, lifetime-between-kills for app-crash), MaxDown
// caps one faulted window, and the scalar fields carry the kind-specific
// magnitudes.
type InjectorSpec struct {
	Kind   string `json:"kind"`
	Target string `json:"target,omitempty"` // server or application name

	MeanUp   Dur `json:"mean_up,omitempty"`
	MeanDown Dur `json:"mean_down,omitempty"`
	MaxDown  Dur `json:"max_down,omitempty"`
	Period   Dur `json:"period,omitempty"` // app-thrash re-raise cadence

	Fraction float64 `json:"fraction,omitempty"` // byte-loss mean fraction
	Spread   float64 `json:"spread,omitempty"`   // byte-loss +/- spread
	Factor   float64 `json:"factor,omitempty"`   // server-latency multiplier
	Delta    int     `json:"delta,omitempty"`    // app-lie level divergence
}

// Targets resolves the symbolic names in injector specs against one trial's
// live rig. Implementations return ok=false (or nil for the battery) when a
// target does not exist in the scenario, which Materialize reports as an
// error rather than a panic, so a malformed or over-shrunk spec fails the
// single trial instead of the whole soak.
type Targets interface {
	// Network returns the wireless network under test.
	Network() *netsim.Network
	// Server resolves a remote server by name.
	Server(name string) (*netsim.Server, bool)
	// Battery returns the SmartBattery, or nil when the scenario reads
	// the bench supply.
	Battery() *smartbattery.Battery
	// App resolves an adaptive application and its misbehavior surface.
	App(name string) (core.Adaptive, *supervise.AppHealth, bool)
}

// TargetAnyPool is the symbolic server target "any member of the offload
// pool": a chaos scenario can crash or overload a pool member without
// naming a concrete rig object whose name depends on the pool size. The
// victim is drawn from the plan's seeded RNG at Start, so which member
// falls is deterministic per seed and the spec round-trips symbolically.
const TargetAnyPool = "pool:any"

// PoolTargets is the optional extension a binder implements when its rig
// carries an offload pool; Build consults it only for TargetAnyPool specs,
// so binders for pool-less rigs need not change.
type PoolTargets interface {
	// PoolServers returns the pool members, in index order.
	PoolServers() []*netsim.Server
}

// poolServers resolves TargetAnyPool against tg, erroring when the binder
// has no pool (or an empty one) to draw from.
func poolServers(kind string, tg Targets) ([]*netsim.Server, error) {
	pt, ok := tg.(PoolTargets)
	if !ok {
		return nil, fmt.Errorf("faults: %s: target %q but the rig has no offload pool", kind, TargetAnyPool)
	}
	pool := pt.PoolServers()
	if len(pool) == 0 {
		return nil, fmt.Errorf("faults: %s: target %q but the offload pool is empty", kind, TargetAnyPool)
	}
	return pool, nil
}

// Build materializes the spec into a live injector bound to tg.
func (s InjectorSpec) Build(tg Targets) (Injector, error) {
	switch s.Kind {
	case KindLink:
		return &LinkOutage{Net: tg.Network(), MeanUp: s.MeanUp.D(), MeanDown: s.MeanDown.D(), MaxDown: s.MaxDown.D()}, nil
	case KindLoss:
		return &ByteLoss{Net: tg.Network(), Fraction: s.Fraction, Spread: s.Spread}, nil
	case KindServerCrash:
		if s.Target == TargetAnyPool {
			pool, err := poolServers(s.Kind, tg)
			if err != nil {
				return nil, err
			}
			return &ServerCrash{Pool: pool, Net: tg.Network(), MeanUp: s.MeanUp.D(), MeanDown: s.MeanDown.D(), MaxDown: s.MaxDown.D()}, nil
		}
		srv, ok := tg.Server(s.Target)
		if !ok {
			return nil, fmt.Errorf("faults: %s: unknown server %q", s.Kind, s.Target)
		}
		return &ServerCrash{Server: srv, Net: tg.Network(), MeanUp: s.MeanUp.D(), MeanDown: s.MeanDown.D(), MaxDown: s.MaxDown.D()}, nil
	case KindServerLatency:
		if s.Target == TargetAnyPool {
			pool, err := poolServers(s.Kind, tg)
			if err != nil {
				return nil, err
			}
			return &ServerLatency{Pool: pool, Net: tg.Network(), MeanCalm: s.MeanUp.D(), MeanSpike: s.MeanDown.D(), Factor: s.Factor}, nil
		}
		srv, ok := tg.Server(s.Target)
		if !ok {
			return nil, fmt.Errorf("faults: %s: unknown server %q", s.Kind, s.Target)
		}
		return &ServerLatency{Server: srv, Net: tg.Network(), MeanCalm: s.MeanUp.D(), MeanSpike: s.MeanDown.D(), Factor: s.Factor}, nil
	case KindBatteryDropout:
		bat := tg.Battery()
		if bat == nil {
			return nil, fmt.Errorf("faults: %s: scenario has no SmartBattery", s.Kind)
		}
		return &BatteryDropout{Bat: bat, MeanUp: s.MeanUp.D(), MeanDown: s.MeanDown.D()}, nil
	case KindTestPanic:
		return &TestPanic{Delay: s.MeanUp.D()}, nil
	case KindTestProcPanic:
		return &TestProcPanic{Delay: s.MeanUp.D()}, nil
	case KindTestLivelock:
		return &TestLivelock{Delay: s.MeanUp.D()}, nil
	case KindAppCrash, KindAppHang, KindAppThrash, KindAppLie:
		app, health, ok := tg.App(s.Target)
		if !ok {
			return nil, fmt.Errorf("faults: %s: unknown application %q", s.Kind, s.Target)
		}
		switch s.Kind {
		case KindAppCrash:
			return &AppCrash{App: app, Health: health, MeanUp: s.MeanUp.D()}, nil
		case KindAppHang:
			return &AppHang{App: app, Health: health, MeanOK: s.MeanUp.D(), MeanHang: s.MeanDown.D(), MaxHang: s.MaxDown.D()}, nil
		case KindAppThrash:
			return &AppThrash{App: app, Health: health, MeanCalm: s.MeanUp.D(), MeanThrash: s.MeanDown.D(), Period: s.Period.D()}, nil
		default:
			return &AppLie{App: app, Health: health, MeanOK: s.MeanUp.D(), MeanLie: s.MeanDown.D(), Delta: s.Delta}, nil
		}
	}
	return nil, fmt.Errorf("faults: unknown injector kind %q", s.Kind)
}

// PlanSpec is the serializable form of a Plan: its name, its RNG seed, and
// its injector specs, in order. Injector order matters — it fixes the order
// injectors arm against the plan's single RNG stream — so the spec
// preserves it exactly.
type PlanSpec struct {
	Name      string         `json:"name"`
	Seed      int64          `json:"seed"`
	Injectors []InjectorSpec `json:"injectors,omitempty"`
}

// Plan materializes the spec into a live plan driving its injectors from k,
// bound to tg.
func (s PlanSpec) Plan(k *sim.Kernel, tg Targets) (*Plan, error) {
	pl := NewPlan(k, s.Name, s.Seed)
	for _, is := range s.Injectors {
		inj, err := is.Build(tg)
		if err != nil {
			return nil, err
		}
		pl.Add(inj)
	}
	return pl, nil
}

// Spec returns the plan's serializable form. For a plan decoded from JSON
// but not yet materialized, the pending injector specs are returned.
func (pl *Plan) Spec() PlanSpec {
	s := PlanSpec{Name: pl.Name, Seed: pl.seed}
	if pl.injectors == nil && pl.pending != nil {
		s.Injectors = append(s.Injectors, pl.pending...)
		return s
	}
	for _, in := range pl.injectors {
		s.Injectors = append(s.Injectors, in.Spec())
	}
	return s
}

// Seed returns the seed of the plan's dedicated RNG stream.
func (pl *Plan) Seed() int64 { return pl.seed }

// MarshalJSON implements json.Marshaler via the plan's spec.
func (pl *Plan) MarshalJSON() ([]byte, error) {
	return json.Marshal(pl.Spec())
}

// UnmarshalJSON implements json.Unmarshaler: the plan is decoded in pending
// form (name, seed, injector specs) and must be bound to a rig with
// Materialize before Start.
func (pl *Plan) UnmarshalJSON(b []byte) error {
	var s PlanSpec
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	*pl = Plan{
		Name:    s.Name,
		seed:    s.Seed,
		rng:     rand.New(rand.NewSource(s.Seed)),
		counts:  make(map[string]int),
		pending: s.Injectors,
	}
	return nil
}

// Materialize binds a plan decoded from JSON to a live rig: every pending
// injector spec is built against tg and the plan becomes startable on k. It
// is an error to materialize a plan that already has live injectors.
func (pl *Plan) Materialize(k *sim.Kernel, tg Targets) error {
	if pl.injectors != nil {
		return fmt.Errorf("faults: plan %q already materialized", pl.Name)
	}
	pl.k = k
	for _, is := range pl.pending {
		inj, err := is.Build(tg)
		if err != nil {
			return err
		}
		pl.injectors = append(pl.injectors, inj)
	}
	pl.pending = nil
	return nil
}
