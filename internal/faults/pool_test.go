package faults_test

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"odyssey/internal/faults"
	"odyssey/internal/netsim"
	"odyssey/internal/sim"
)

// poolTargets extends the stub binder with an offload pool, the way the
// chaos binder does when Rig.Pool is armed.
type poolTargets struct {
	*stubTargets
	pool []*netsim.Server
}

func (t *poolTargets) PoolServers() []*netsim.Server { return t.pool }

func newPoolRig(seed int64, n int) (*sim.Kernel, *poolTargets) {
	k, tg := newSpecRig(seed)
	pt := &poolTargets{stubTargets: tg}
	for i := 0; i < n; i++ {
		pt.pool = append(pt.pool, netsim.NewServer(k, "pool-"+string(rune('a'+i))))
	}
	return k, pt
}

func anyPoolSpec() faults.PlanSpec {
	return faults.PlanSpec{
		Name: "pool-chaos",
		Seed: 4242,
		Injectors: []faults.InjectorSpec{
			{Kind: faults.KindServerCrash, Target: faults.TargetAnyPool,
				MeanUp: faults.Dur(time.Minute), MeanDown: faults.Dur(10 * time.Second), MaxDown: faults.Dur(30 * time.Second)},
			{Kind: faults.KindServerLatency, Target: faults.TargetAnyPool,
				MeanUp: faults.Dur(50 * time.Second), MeanDown: faults.Dur(15 * time.Second), Factor: 5},
		},
	}
}

// TestAnyPoolSpecRoundTrip: the symbolic "pool:any" target survives
// spec -> plan -> JSON -> spec exactly, and — crucially — the spec stays
// symbolic even AFTER Start has drawn a concrete victim, so a shrunk or
// re-serialized scenario replays the draw instead of pinning the victim.
func TestAnyPoolSpecRoundTrip(t *testing.T) {
	k, tg := newPoolRig(1, 3)
	spec := anyPoolSpec()
	pl, err := spec.Plan(k, tg)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if got := pl.Spec(); !reflect.DeepEqual(got, spec) {
		t.Fatalf("pre-start spec diverged:\n got %+v\nwant %+v", got, spec)
	}
	b, err := json.Marshal(pl)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded faults.PlanSpec
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(decoded, spec) {
		t.Fatalf("decoded spec diverged:\n got %+v\nwant %+v", decoded, spec)
	}
	pl.Start()
	k.At(2*time.Minute, func() { k.Stop() })
	k.Run(0)
	pl.Stop()
	if got := pl.Spec(); !reflect.DeepEqual(got, spec) {
		t.Fatalf("post-start spec pinned the victim:\n got %+v\nwant %+v", got, spec)
	}
}

// TestAnyPoolVictimDeterminism: the victim draw comes from the plan's
// seeded RNG, so the same (spec, pool) picks the same member every run,
// and the schedule it then drives is identical event-for-event.
func TestAnyPoolVictimDeterminism(t *testing.T) {
	run := func() map[string]int {
		k, tg := newPoolRig(9, 3)
		pl, err := anyPoolSpec().Plan(k, tg)
		if err != nil {
			t.Fatalf("materialize: %v", err)
		}
		pl.Start()
		k.At(5*time.Minute, func() { k.Stop() })
		k.Run(0)
		pl.Stop()
		_, counts := pl.Counts()
		return counts
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same seed drew different victims/schedules:\n got %v\nwant %v", second, first)
	}
	// The counts are keyed by post-draw injector names, so a concrete
	// victim must appear — and it must be a pool member, not srv-a.
	sawPool, sawSymbolic := false, false
	for name := range first {
		if name == "server:srv-a" || name == "latency:srv-a" {
			t.Fatalf("victim drawn outside the pool: %q", name)
		}
		if name == "server:"+faults.TargetAnyPool || name == "latency:"+faults.TargetAnyPool {
			sawSymbolic = true
		}
		if len(name) > 0 {
			sawPool = true
		}
	}
	if !sawPool {
		t.Fatal("no fault events in 5 minutes; pool injectors never armed")
	}
	if sawSymbolic {
		t.Fatalf("events logged under the symbolic name; victim never drawn: %v", first)
	}
}

// TestAnyPoolBuildErrors: a "pool:any" spec against a binder with no pool
// (or an empty one) is a materialization error, never a panic.
func TestAnyPoolBuildErrors(t *testing.T) {
	k, bare := newSpecRig(3)
	for _, kind := range []string{faults.KindServerCrash, faults.KindServerLatency} {
		is := faults.InjectorSpec{Kind: kind, Target: faults.TargetAnyPool}
		if _, err := is.Build(bare); err == nil {
			t.Errorf("%s built against a pool-less binder; want error", kind)
		}
		kEmpty, empty := newPoolRig(4, 0)
		_ = kEmpty
		if _, err := is.Build(empty); err == nil {
			t.Errorf("%s built against an empty pool; want error", kind)
		}
	}
	_ = k
}
