// Package faults is the deterministic fault-injection plane for the
// simulated testbed. The paper's experiments ran on a reliable bench
// network; real mobile networks lose carriers, drop bytes, and talk to
// servers that crash. Injectors here drive those failures from the virtual
// clock with their own seeded RNG stream, so a faulted run is exactly as
// reproducible as a clean one: same seed, same outages, same byte losses,
// same trace.
//
// Injectors compose into a Plan. Attaching network injectors arms the
// resilient transfer layer in internal/netsim (deadlines, retries, fallback
// errors); with no plan attached that layer stays disarmed and fault-free
// runs are byte-for-byte unchanged.
package faults

import (
	"math/rand"
	"sort"
	"time"

	"odyssey/internal/sim"
	"odyssey/internal/trace"
)

// Injector is one fault process. Start arms it against the plan's clock and
// RNG; Stop disarms it and restores healthy state. Both are idempotent.
// Spec returns the injector's serializable description (see spec.go), so a
// plan can round-trip through JSON and be rebuilt against a fresh rig.
type Injector interface {
	Name() string
	Start(pl *Plan)
	Stop()
	Spec() InjectorSpec
}

// Plan composes injectors under one seeded RNG stream, separate from the
// kernel's, so adding or removing faults never perturbs workload draws.
type Plan struct {
	Name string
	// Log, if set, receives every fault event under trace.CatFault.
	Log *trace.Log

	k         *sim.Kernel
	seed      int64
	rng       *rand.Rand
	injectors []Injector
	pending   []InjectorSpec // decoded but not yet materialized (spec.go)
	counts    map[string]int
	running   bool
}

// NewPlan returns an empty plan driving its injectors from k, with fault
// timing drawn from its own stream seeded by seed.
func NewPlan(k *sim.Kernel, name string, seed int64) *Plan {
	return &Plan{
		Name:   name,
		k:      k,
		seed:   seed,
		rng:    rand.New(rand.NewSource(seed)),
		counts: make(map[string]int),
	}
}

// Add appends injectors to the plan (before or after Start; added ones
// start immediately if the plan is running). It returns the plan.
func (pl *Plan) Add(injs ...Injector) *Plan {
	pl.injectors = append(pl.injectors, injs...)
	if pl.running {
		for _, in := range injs {
			in.Start(pl)
		}
	}
	return pl
}

// Start arms every injector.
func (pl *Plan) Start() {
	if pl.running {
		return
	}
	pl.running = true
	for _, in := range pl.injectors {
		in.Start(pl)
	}
}

// Stop disarms every injector, restoring healthy state.
func (pl *Plan) Stop() {
	if !pl.running {
		return
	}
	pl.running = false
	for _, in := range pl.injectors {
		in.Stop()
	}
}

// K exposes the plan's kernel to injectors.
func (pl *Plan) K() *sim.Kernel { return pl.k }

// Rand exposes the plan's dedicated RNG stream to injectors.
func (pl *Plan) Rand() *rand.Rand { return pl.rng }

// event counts one fault occurrence and records it in the trace log.
func (pl *Plan) event(subject, message string, value float64) {
	pl.counts[subject+"/"+message]++
	if pl.Log != nil {
		pl.Log.Add(trace.CatFault, subject, message, value)
	}
}

// Counts returns occurrences per "injector/event" key, with keys sorted.
func (pl *Plan) Counts() (keys []string, counts map[string]int) {
	counts = make(map[string]int, len(pl.counts))
	for k, v := range pl.counts {
		keys = append(keys, k)
		counts[k] = v
	}
	sort.Strings(keys)
	return keys, counts
}

// TotalEvents reports the total number of fault events injected.
func (pl *Plan) TotalEvents() int {
	n := 0
	for _, v := range pl.counts {
		n += v
	}
	return n
}

// hold draws an exponential holding time with the given mean from the
// plan's RNG, clamped below at 1 ms (the kernel cannot schedule into the
// past) and above at max when max > 0 (bounding e.g. crash windows).
func (pl *Plan) hold(mean, max time.Duration) time.Duration {
	d := time.Duration(pl.rng.ExpFloat64() * float64(mean))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}

// toggler is the shared two-state (healthy/faulted) engine behind the
// injectors: exponential holding times in each state, enter/exit callbacks
// run in kernel context.
type toggler struct {
	pl      *Plan
	ev      sim.Event
	meanOK  time.Duration
	meanBad time.Duration
	maxBad  time.Duration
	faulted bool
	enter   func() // healthy -> faulted
	exit    func() // faulted -> healthy
	stopped bool
}

func (t *toggler) start(pl *Plan) {
	t.pl = pl
	t.stopped = false
	t.faulted = false
	t.schedule()
}

func (t *toggler) schedule() {
	mean, max := t.meanOK, time.Duration(0)
	if t.faulted {
		mean, max = t.meanBad, t.maxBad
	}
	t.ev = t.pl.k.After(t.pl.hold(mean, max), func() {
		if t.stopped {
			return
		}
		t.faulted = !t.faulted
		if t.faulted {
			t.enter()
		} else {
			t.exit()
		}
		t.schedule()
	})
}

func (t *toggler) stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.ev.Cancel()
	t.ev = sim.Event{}
	if t.faulted {
		t.faulted = false
		t.exit()
	}
}
