package odfs_test

import (
	"strings"
	"testing"

	"odyssey/internal/app/env"
	"odyssey/internal/app/mapview"
	"odyssey/internal/odfs"
)

// FuzzPathHandling checks that arbitrary paths never panic the namespace
// and that accepted paths round-trip through Lookup.
func FuzzPathHandling(f *testing.F) {
	for _, seed := range []string{
		"/", "/a", "/a/b/c", "//x//y", "/./a", "/../etc", "relative",
		"", "/a/../b", "/odyssey/maps/San Jose", strings.Repeat("/x", 50),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, path string) {
		rig := env.NewRig(1, 1)
		mapview.NewViewer(rig)
		fs := odfs.New(rig.V)
		obj, err := fs.Register(odfs.Object{Path: path, Type: "map", Data: mapview.StandardMaps()[0]})
		if err != nil {
			return // rejected paths are fine; panics are not
		}
		got, err := fs.Lookup(obj.Path)
		if err != nil {
			t.Fatalf("registered path %q (from %q) not found: %v", obj.Path, path, err)
		}
		if got.Path != obj.Path {
			t.Fatalf("lookup returned %q for %q", got.Path, obj.Path)
		}
		if !strings.HasPrefix(obj.Path, "/") {
			t.Fatalf("accepted non-absolute normalized path %q", obj.Path)
		}
	})
}
