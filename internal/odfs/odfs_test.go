package odfs_test

import (
	"errors"
	"testing"
	"time"

	"odyssey/internal/app/env"
	"odyssey/internal/app/mapview"
	"odyssey/internal/app/speech"
	"odyssey/internal/app/video"
	"odyssey/internal/app/web"
	"odyssey/internal/core"
	"odyssey/internal/odfs"
	"odyssey/internal/sim"
)

// newStack builds a rig with all four wardens mounted and the standard data
// objects registered in the namespace.
func newStack(seed int64) (*env.Rig, *odfs.FS) {
	rig := env.NewRig(seed, 1)
	rig.EnablePowerMgmt()
	video.NewPlayer(rig)
	speech.NewRecognizer(rig)
	mapview.NewViewer(rig)
	web.NewBrowser(rig)
	fs := odfs.New(rig.V)
	for _, m := range mapview.StandardMaps() {
		if _, err := fs.Register(odfs.Object{Path: "/odyssey/maps/" + m.City, Type: "map", Data: m}); err != nil {
			panic(err)
		}
	}
	for _, img := range web.StandardImages() {
		if _, err := fs.Register(odfs.Object{Path: "/odyssey/web/" + img.Name, Type: "web", Data: img}); err != nil {
			panic(err)
		}
	}
	for _, u := range speech.StandardUtterances() {
		if _, err := fs.Register(odfs.Object{Path: "/odyssey/speech/" + u.Name, Type: "speech", Data: u}); err != nil {
			panic(err)
		}
	}
	if _, err := fs.Register(odfs.Object{Path: "/odyssey/video/newsfeed", Type: "video",
		Data: video.Clip{Name: "newsfeed", Length: 10 * time.Second}}); err != nil {
		panic(err)
	}
	return rig, fs
}

func TestNamespaceBasics(t *testing.T) {
	_, fs := newStack(1)
	obj, err := fs.Lookup("/odyssey/maps/San Jose")
	if err != nil {
		t.Fatal(err)
	}
	if obj.Type != "map" {
		t.Fatalf("type %q", obj.Type)
	}
	// Normalization: extra slashes and dots resolve.
	if _, err := fs.Lookup("//odyssey/./maps/San Jose"); err != nil {
		t.Fatalf("normalized lookup failed: %v", err)
	}
	if _, err := fs.Lookup("/nope"); !errors.Is(err, odfs.ErrNotFound) {
		t.Fatalf("missing object error %v", err)
	}
	if _, err := fs.Lookup("relative/path"); !errors.Is(err, odfs.ErrBadPath) {
		t.Fatalf("relative path error %v", err)
	}
	if _, err := fs.Lookup("/odyssey/../etc"); !errors.Is(err, odfs.ErrBadPath) {
		t.Fatalf("dotdot path error %v", err)
	}
}

func TestRegisterErrors(t *testing.T) {
	rig := env.NewRig(2, 1)
	fs := odfs.New(rig.V)
	if _, err := fs.Register(odfs.Object{Path: "/x", Type: "map"}); !errors.Is(err, odfs.ErrNoWarden) {
		t.Fatalf("unmounted type error %v", err)
	}
	mapview.NewViewer(rig)
	if _, err := fs.Register(odfs.Object{Path: "/x", Type: "map", Data: mapview.StandardMaps()[0]}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Register(odfs.Object{Path: "/x", Type: "map", Data: mapview.StandardMaps()[0]}); !errors.Is(err, odfs.ErrExists) {
		t.Fatalf("duplicate error %v", err)
	}
}

func TestWalk(t *testing.T) {
	_, fs := newStack(3)
	maps, err := fs.Walk("/odyssey/maps")
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 4 {
		t.Fatalf("walk found %d maps", len(maps))
	}
	all, _ := fs.Walk("/")
	if len(all) != 13 {
		t.Fatalf("walk found %d objects, want 13", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Fatal("walk output not sorted")
		}
	}
}

func TestRemove(t *testing.T) {
	_, fs := newStack(4)
	if err := fs.Remove("/odyssey/video/newsfeed"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup("/odyssey/video/newsfeed"); !errors.Is(err, odfs.ErrNotFound) {
		t.Fatal("object still present after Remove")
	}
	if err := fs.Remove("/odyssey/video/newsfeed"); !errors.Is(err, odfs.ErrNotFound) {
		t.Fatalf("double remove error %v", err)
	}
}

func TestMapFetchTSOp(t *testing.T) {
	rig, fs := newStack(5)
	var full, low float64
	rig.K.Spawn("user", func(p *sim.Proc) {
		h, err := fs.Open("/odyssey/maps/San Jose", 3) // full detail
		if err != nil {
			t.Error(err)
			return
		}
		cp := rig.M.Acct.Checkpoint()
		if _, err := h.TSOp(p, "fetch", mapview.FetchArgs{Think: 2 * time.Second}); err != nil {
			t.Error(err)
			return
		}
		full = cp.Since()

		h.SetFidelity(0) // cropped + secondary filter
		cp = rig.M.Acct.Checkpoint()
		if _, err := h.TSOp(p, "fetch", mapview.FetchArgs{Think: 2 * time.Second}); err != nil {
			t.Error(err)
			return
		}
		low = cp.Since()
		h.Close()
		if _, err := h.TSOp(p, "fetch", nil); !errors.Is(err, odfs.ErrClosed) {
			t.Errorf("closed handle error %v", err)
		}
	})
	rig.K.Run(0)
	if full <= 0 || low <= 0 {
		t.Fatalf("energies full=%v low=%v", full, low)
	}
	if low >= full {
		t.Fatalf("low fidelity fetch (%.1f J) not cheaper than full (%.1f J)", low, full)
	}
}

func TestVideoPlayTSOp(t *testing.T) {
	rig, fs := newStack(6)
	rig.K.Spawn("user", func(p *sim.Proc) {
		h, err := fs.Open("/odyssey/video/newsfeed", 0)
		if err != nil {
			t.Error(err)
			return
		}
		res, err := h.TSOp(p, "play", nil)
		if err != nil {
			t.Error(err)
			return
		}
		if res != video.TrackCombined.Name {
			t.Errorf("lowest fidelity played track %v", res)
		}
	})
	end := rig.K.Run(0)
	if end < 10*time.Second {
		t.Fatalf("playback ended at %v, clip is 10 s", end)
	}
}

func TestSpeechRecognizeTSOp(t *testing.T) {
	rig, fs := newStack(7)
	rig.K.Spawn("user", func(p *sim.Proc) {
		h, err := fs.Open("/odyssey/speech/Utterance 1", 1)
		if err != nil {
			t.Error(err)
			return
		}
		res, err := h.TSOp(p, "recognize", speech.RecognizeArgs{Mode: speech.Hybrid})
		if err != nil {
			t.Error(err)
			return
		}
		if res != speech.FullVocab {
			t.Errorf("full fidelity selected model %v", res)
		}
	})
	rig.K.Run(0)
	if rig.Net.BytesMoved() == 0 {
		t.Fatal("hybrid recognition moved no bytes")
	}
}

func TestWebFetchTSOp(t *testing.T) {
	rig, fs := newStack(8)
	rig.K.Spawn("user", func(p *sim.Proc) {
		h, err := fs.Open("/odyssey/web/Image 4", 0) // JPEG-5
		if err != nil {
			t.Error(err)
			return
		}
		res, err := h.TSOp(p, "fetch", web.FetchArgs{Think: time.Second})
		if err != nil {
			t.Error(err)
			return
		}
		bytes := res.(float64)
		if bytes >= web.StandardImages()[3].GIFBytes {
			t.Errorf("JPEG-5 delivered %v bytes, no reduction", bytes)
		}
	})
	rig.K.Run(0)
}

func TestUnknownOpRejected(t *testing.T) {
	rig, fs := newStack(9)
	rig.K.Spawn("user", func(p *sim.Proc) {
		h, err := fs.Open("/odyssey/maps/Boston", 1)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := h.TSOp(p, "paint", nil); !errors.Is(err, odfs.ErrNoSuchOp) {
			t.Errorf("unknown op error %v", err)
		}
	})
	rig.K.Run(0)
}

// plainWarden has no tsop support.
type plainWarden struct{}

func (plainWarden) TypeName() string { return "plain" }

func TestOpenRequiresTSOpWarden(t *testing.T) {
	k := sim.NewKernel(1)
	v := core.NewViceroy(k)
	if err := v.RegisterWarden(plainWarden{}); err != nil {
		t.Fatal(err)
	}
	fs := odfs.New(v)
	if _, err := fs.Register(odfs.Object{Path: "/p", Type: "plain"}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/p", 0); !errors.Is(err, odfs.ErrNoWarden) {
		t.Fatalf("tsop-less open error %v", err)
	}
}
