// Package odfs is the Odyssey namespace: the paper integrates Odyssey into
// Linux as a new VFS file system, with applications naming typed data
// objects by path and invoking type-specific operations (tsops) that are
// dispatched to the warden for the object's type. This package reproduces
// that interface layer: a hierarchical namespace of typed objects, a warden
// mount table keyed by type, open handles carrying fidelity annotations,
// and tsop dispatch.
//
// The viceroy's warden registry (internal/core) supplies the mount table,
// so a warden registered once serves both the adaptation machinery and the
// namespace.
package odfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"odyssey/internal/core"
	"odyssey/internal/sim"
)

// Errors returned by namespace operations.
var (
	ErrNotFound = errors.New("odfs: no such object")
	ErrExists   = errors.New("odfs: object already exists")
	ErrNoWarden = errors.New("odfs: no warden mounted for type")
	ErrBadPath  = errors.New("odfs: invalid path")
	ErrNoSuchOp = errors.New("odfs: warden does not implement operation")
	ErrClosed   = errors.New("odfs: handle is closed")
)

// Object is a typed data object in the Odyssey namespace.
type Object struct {
	// Path is the absolute name, e.g. "/odyssey/maps/san-jose".
	Path string
	// Type selects the warden, e.g. "map", "video", "speech", "web".
	Type string
	// Data is the warden-interpreted payload descriptor (a mapview.Map,
	// a video.Clip, ...).
	Data any
}

// TSOpWarden is implemented by wardens that accept type-specific
// operations. Op names are warden-defined ("fetch", "play", "recognize");
// args and results are warden-interpreted.
type TSOpWarden interface {
	core.Warden
	TSOp(p *sim.Proc, obj *Object, op string, fidelity int, args any) (any, error)
}

// FS is the Odyssey namespace bound to a viceroy's warden registry.
type FS struct {
	v       *core.Viceroy
	objects map[string]*Object
}

// New returns an empty namespace using v's wardens as the mount table.
func New(v *core.Viceroy) *FS {
	return &FS{v: v, objects: make(map[string]*Object)}
}

// cleanPath validates and normalizes an absolute path.
func cleanPath(path string) (string, error) {
	if !strings.HasPrefix(path, "/") {
		return "", fmt.Errorf("%w: %q is not absolute", ErrBadPath, path)
	}
	parts := strings.Split(path, "/")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		switch p {
		case "", ".":
			continue
		case "..":
			return "", fmt.Errorf("%w: %q contains ..", ErrBadPath, path)
		default:
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return "/", nil
	}
	return "/" + strings.Join(out, "/"), nil
}

// Register adds an object to the namespace. The object's type must have a
// warden mounted.
func (fs *FS) Register(obj Object) (*Object, error) {
	path, err := cleanPath(obj.Path)
	if err != nil {
		return nil, err
	}
	if fs.v.Warden(obj.Type) == nil {
		return nil, fmt.Errorf("%w %q (object %q)", ErrNoWarden, obj.Type, path)
	}
	if _, dup := fs.objects[path]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, path)
	}
	obj.Path = path
	fs.objects[path] = &obj
	return &obj, nil
}

// Remove deletes an object from the namespace.
func (fs *FS) Remove(path string) error {
	path, err := cleanPath(path)
	if err != nil {
		return err
	}
	if _, ok := fs.objects[path]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	delete(fs.objects, path)
	return nil
}

// Lookup resolves a path to its object.
func (fs *FS) Lookup(path string) (*Object, error) {
	path, err := cleanPath(path)
	if err != nil {
		return nil, err
	}
	obj, ok := fs.objects[path]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	return obj, nil
}

// Walk lists the object paths under a directory prefix, sorted.
func (fs *FS) Walk(prefix string) ([]string, error) {
	prefix, err := cleanPath(prefix)
	if err != nil {
		return nil, err
	}
	if prefix != "/" {
		prefix += "/"
	}
	var out []string
	for p := range fs.objects {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Handle is an open object carrying a fidelity annotation, the unit the
// original API attaches resource expectations and tsops to.
type Handle struct {
	fs       *FS
	obj      *Object
	warden   TSOpWarden
	fidelity int
	closed   bool
}

// Open resolves a path and returns a handle at the given fidelity level.
// The object's warden must implement tsops.
func (fs *FS) Open(path string, fidelity int) (*Handle, error) {
	obj, err := fs.Lookup(path)
	if err != nil {
		return nil, err
	}
	w := fs.v.Warden(obj.Type)
	tw, ok := w.(TSOpWarden)
	if !ok {
		return nil, fmt.Errorf("%w %q: warden has no tsop support", ErrNoWarden, obj.Type)
	}
	return &Handle{fs: fs, obj: obj, warden: tw, fidelity: fidelity}, nil
}

// Object returns the handle's object.
func (h *Handle) Object() *Object { return h.obj }

// Fidelity returns the handle's current fidelity annotation.
func (h *Handle) Fidelity() int { return h.fidelity }

// SetFidelity re-annotates the handle (applications do this in response to
// adaptation upcalls).
func (h *Handle) SetFidelity(level int) { h.fidelity = level }

// TSOp dispatches a type-specific operation to the object's warden on
// behalf of process p.
func (h *Handle) TSOp(p *sim.Proc, op string, args any) (any, error) {
	if h.closed {
		return nil, ErrClosed
	}
	return h.warden.TSOp(p, h.obj, op, h.fidelity, args)
}

// Close invalidates the handle.
func (h *Handle) Close() { h.closed = true }
