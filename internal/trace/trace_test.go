package trace

import (
	"strings"
	"testing"
	"time"
)

func fixedClock(t *time.Duration) func() time.Duration {
	return func() time.Duration { return *t }
}

func TestAddAndFilter(t *testing.T) {
	now := time.Duration(0)
	l := NewLog(fixedClock(&now), 0)
	l.Add(CatAdapt, "video", "level 3 -> 2", 2)
	now = time.Second
	l.Add(CatDevice, "disk", "idle -> standby", 0)
	l.Add(CatAdapt, "speech", "level 1 -> 0", 0)

	if l.Len() != 3 {
		t.Fatalf("len %d", l.Len())
	}
	adapts := l.Filter(CatAdapt, "")
	if len(adapts) != 2 {
		t.Fatalf("%d adapt events", len(adapts))
	}
	video := l.Filter(CatAdapt, "video")
	if len(video) != 1 || video[0].Value != 2 {
		t.Fatalf("video events %v", video)
	}
	all := l.Filter("", "")
	if len(all) != 3 {
		t.Fatalf("unfiltered %d", len(all))
	}
	if all[1].Time != time.Second {
		t.Fatalf("timestamp %v", all[1].Time)
	}
}

func TestBoundedDropsOldest(t *testing.T) {
	now := time.Duration(0)
	l := NewLog(fixedClock(&now), 8)
	for i := 0; i < 20; i++ {
		l.Add(CatOp, "app", "op", float64(i))
	}
	if l.Len() > 8 {
		t.Fatalf("log grew to %d beyond cap", l.Len())
	}
	if l.Dropped() == 0 {
		t.Fatal("no drops recorded")
	}
	evs := l.Events()
	// The newest event must be retained.
	if evs[len(evs)-1].Value != 19 {
		t.Fatalf("newest retained value %v", evs[len(evs)-1].Value)
	}
	// Retained events stay in order.
	for i := 1; i < len(evs); i++ {
		if evs[i].Value < evs[i-1].Value {
			t.Fatal("events out of order after dropping")
		}
	}
}

func TestCounts(t *testing.T) {
	now := time.Duration(0)
	l := NewLog(fixedClock(&now), 0)
	l.Add(CatAdapt, "video", "x", 0)
	l.Add(CatAdapt, "video", "y", 0)
	l.Add(CatDevice, "nic", "z", 0)
	keys, counts := l.Counts()
	if len(keys) != 2 || counts["adapt/video"] != 2 || counts["device/nic"] != 1 {
		t.Fatalf("counts %v %v", keys, counts)
	}
}

func TestTextAndCSV(t *testing.T) {
	now := 1500 * time.Millisecond
	l := NewLog(fixedClock(&now), 0)
	l.Add(CatMonitor, "odyssey", `degrade "video"`, 1)
	text := l.Text()
	if !strings.Contains(text, "monitor") || !strings.Contains(text, "odyssey") {
		t.Fatalf("text: %q", text)
	}
	csv := l.CSV()
	if !strings.HasPrefix(csv, "t_seconds,category,subject,message,value\n") {
		t.Fatalf("csv header: %q", csv)
	}
	if !strings.Contains(csv, "1.500,monitor,odyssey") {
		t.Fatalf("csv row: %q", csv)
	}
	// Quoted message survives embedded quotes.
	if !strings.Contains(csv, `"degrade \"video\""`) {
		t.Fatalf("csv quoting: %q", csv)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: 2 * time.Second, Category: CatDevice, Subject: "disk", Message: "spin-up", Value: 2.3}
	s := e.String()
	for _, want := range []string{"2.000s", "device", "disk", "spin-up"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
}
