// Package trace is a structured event log for simulation runs: adaptation
// upcalls, device power-state transitions, application operations, and
// monitor decisions, timestamped on the virtual clock. Experiments attach a
// Log to record what happened; tools render it as text or CSV.
//
// The log is bounded: once the capacity is reached the oldest events are
// dropped (and counted), so long goal-directed runs cannot grow without
// limit.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Category classifies events for filtering.
type Category string

// Standard categories.
const (
	CatAdapt     Category = "adapt"     // fidelity upcalls
	CatDevice    Category = "device"    // power-state transitions
	CatOp        Category = "op"        // application operations
	CatMonitor   Category = "monitor"   // energy-monitor decisions
	CatResource  Category = "resource"  // viceroy resource updates
	CatFault     Category = "fault"     // injected failures (outages, crashes, dropouts)
	CatSupervise Category = "supervise" // application supervision (watchdogs, restarts, quarantine)
)

// Event is one timestamped observation.
type Event struct {
	Time     time.Duration
	Category Category
	Subject  string // who: app or device name
	Message  string
	Value    float64 // optional numeric payload (level, watts, joules)
}

// String renders the event on one line.
func (e Event) String() string {
	return fmt.Sprintf("%10.3fs %-8s %-10s %s (%.3g)",
		e.Time.Seconds(), e.Category, e.Subject, e.Message, e.Value)
}

// Log is a bounded event recorder. The zero value is unusable; create one
// with NewLog.
type Log struct {
	now     func() time.Duration
	cap     int
	events  []Event
	dropped int
}

// NewLog creates a log reading timestamps from now, holding at most cap
// events (cap <= 0 selects a generous default).
func NewLog(now func() time.Duration, cap int) *Log {
	if cap <= 0 {
		cap = 1 << 16
	}
	// The full backing array is reserved up front (pages are only touched
	// as events land), so Add never allocates on the kernel hot path.
	return &Log{now: now, cap: cap, events: make([]Event, 0, cap)}
}

// Add records an event at the current virtual time.
func (l *Log) Add(cat Category, subject, message string, value float64) {
	if len(l.events) >= l.cap {
		// Drop the oldest half to amortize copying.
		n := l.cap / 2
		copy(l.events, l.events[n:])
		l.events = l.events[:len(l.events)-n]
		l.dropped += n
	}
	// Re-extend into the preallocated array and write fields in place.
	i := len(l.events)
	l.events = l.events[:i+1]
	e := &l.events[i]
	e.Time = l.now()
	e.Category = cat
	e.Subject = subject
	e.Message = message
	e.Value = value
}

// Len reports the number of retained events.
func (l *Log) Len() int { return len(l.events) }

// Dropped reports how many events were discarded to respect the bound.
func (l *Log) Dropped() int { return l.dropped }

// Events returns the retained events, oldest first (a copy).
func (l *Log) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Filter returns the retained events matching the category (all categories
// if cat is empty) and subject (all subjects if empty).
func (l *Log) Filter(cat Category, subject string) []Event {
	var out []Event
	for _, e := range l.events {
		if cat != "" && e.Category != cat {
			continue
		}
		if subject != "" && e.Subject != subject {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Counts returns the number of events per (category, subject) pair,
// rendered as "category/subject" keys, sorted in the returned key list.
func (l *Log) Counts() (keys []string, counts map[string]int) {
	counts = make(map[string]int)
	for _, e := range l.events {
		counts[string(e.Category)+"/"+e.Subject]++
	}
	keys = make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, counts
}

// Text renders the whole log, one event per line.
func (l *Log) Text() string {
	var b strings.Builder
	for _, e := range l.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	if l.dropped > 0 {
		fmt.Fprintf(&b, "(%d earlier events dropped)\n", l.dropped)
	}
	return b.String()
}

// CSV renders the log as comma-separated values with a header row.
func (l *Log) CSV() string {
	var b strings.Builder
	b.WriteString("t_seconds,category,subject,message,value\n")
	for _, e := range l.events {
		fmt.Fprintf(&b, "%.3f,%s,%s,%q,%g\n",
			e.Time.Seconds(), e.Category, e.Subject, e.Message, e.Value)
	}
	return b.String()
}
