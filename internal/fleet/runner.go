package fleet

import (
	"fmt"
	"io"
	"sort"

	"odyssey/internal/app/env"
	"odyssey/internal/chaos"
	"odyssey/internal/core"
	"odyssey/internal/experiment"
	"odyssey/internal/faults"
	"odyssey/internal/sim"
	"odyssey/internal/smartbattery"
	"odyssey/internal/workload"
)

// The fleet runner. Sessions are sharded into a FIXED number of contiguous
// index ranges — fixed meaning independent of the worker count — and each
// shard folds its sessions into a private Aggregate in index order; shard
// aggregates then merge in shard-index order. Workers only decide *when* a
// shard's reduction happens, never its content or its place in the final
// merge, so the scorecard is byte-identical at -parallel 1 and -parallel
// 64. Changing the shard count changes the float accumulation geometry
// (like regrouping any float sum), so DefaultShards is part of the replay
// contract.

// DefaultShards is the fixed shard count of the reduction geometry.
const DefaultShards = 64

// RunOptions parameterizes one fleet run.
type RunOptions struct {
	Population Population
	Seed       int64
	Devices    int // device-sessions to run (session-count mode)
	Shards     int // 0 = DefaultShards; clamped to Devices

	// Progress, if non-nil, receives one line per completed shard. It is
	// observability only — never part of the scorecard — so it may carry
	// wall-clock rates. Writes are serialized by the caller's writer.
	Progress io.Writer

	// Journal, when non-empty, is the crash-safe shard journal: a header
	// line pinning the run geometry plus one fsync'd JSON line per
	// completed shard aggregate (see journal.go).
	Journal string
	// Resume replays Journal first: shards already journaled under this
	// exact geometry merge verbatim instead of re-running. Shard
	// aggregates round-trip exactly (integer sketches, shortest-form
	// floats), so a resumed scorecard is byte-identical to an
	// uninterrupted one.
	Resume bool
	// Stop, when non-nil, is polled before each shard starts; once it
	// returns true, unstarted shards are skipped and the result marked
	// interrupted. In-flight shards finish and journal normally.
	Stop func() bool
}

// Result is a finished fleet run: the merged reduction plus the geometry
// that produced it.
type Result struct {
	Opts RunOptions
	Agg  *Aggregate
	// RanShards/ReplayedShards/SkippedShards decompose the shard geometry
	// for this invocation. Interrupted reports Stop tripped before every
	// shard reduced, leaving Agg partial; resuming against the same
	// journal completes it.
	RanShards      int
	ReplayedShards int
	SkippedShards  int
	Interrupted    bool
}

// shardRange returns the half-open session range of shard s among n
// sessions split into k balanced contiguous shards.
func shardRange(s, k, n int) (int, int) {
	return s * n / k, (s + 1) * n / k
}

// Run executes the fleet: derives each session from (population, seed,
// index), runs it on a private rig, and reduces everything into one
// Aggregate. Memory is O(shards + workers), independent of Devices. The
// error is non-nil only if a derived fault plan failed to materialize —
// a population-model bug, not a device outcome.
func Run(opts RunOptions) (*Result, error) {
	n := opts.Devices
	if n < 0 {
		n = 0
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	if shards > n && n > 0 {
		shards = n
	}
	if n == 0 {
		return &Result{Opts: opts, Agg: NewAggregate()}, nil
	}

	var replayed map[int]*Aggregate
	var jw *fleetJournal
	if opts.Journal != "" {
		hdr := journalHeader{Population: opts.Population.Name, Seed: opts.Seed, Devices: n, Shards: shards}
		var warnings []string
		var err error
		jw, replayed, warnings, err = openFleetJournal(opts.Journal, hdr, opts.Resume)
		if err != nil {
			return nil, err
		}
		// Each shard entry is fsync'd as it lands; nothing is left to flush.
		defer func() { _ = jw.close() }()
		if opts.Progress != nil {
			for _, w := range warnings {
				_, _ = fmt.Fprintln(opts.Progress, w)
			}
		}
	}

	aggs := make([]*Aggregate, shards)
	errs := make([]error, shards)
	experiment.RunTasks(shards, func(s int) {
		if replayed[s] != nil {
			return
		}
		if opts.Stop != nil && opts.Stop() {
			return
		}
		agg := NewAggregate()
		lo, hi := shardRange(s, shards, n)
		for i := lo; i < hi; i++ {
			sess := opts.Population.Session(opts.Seed, i)
			out, err := runSession(i, sess)
			if err != nil {
				errs[s] = fmt.Errorf("fleet: session %d (seed %d): %w", i, sess.Seed, err)
				return
			}
			if out.Contained != "" && opts.Progress != nil {
				_, _ = fmt.Fprintf(opts.Progress, "contained %s in session %d (seed %d): %s\n", out.Contained, i, sess.Seed, out.Detail)
			}
			agg.observe(sess, out)
		}
		// Journal before publishing: a shard is either durably journaled
		// and counted, or neither.
		if jw != nil {
			if err := jw.append(s, agg); err != nil {
				errs[s] = err
				return
			}
		}
		aggs[s] = agg
		if opts.Progress != nil {
			_, _ = fmt.Fprintf(opts.Progress, "shard %3d/%d done: sessions %d-%d\n", s+1, shards, lo, hi-1)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Opts: opts, Agg: NewAggregate()}
	for s := 0; s < shards; s++ {
		switch {
		case replayed[s] != nil:
			res.ReplayedShards++
			res.Agg.Merge(replayed[s])
		case aggs[s] != nil:
			res.RanShards++
			res.Agg.Merge(aggs[s])
		default:
			res.SkippedShards++
			res.Interrupted = true
		}
	}
	return res, nil
}

// mutateGoalOptions, when non-nil, rewrites session index i's GoalOptions
// before the run starts. It exists solely for containment self-tests that
// plant crashing or livelocking injectors into an otherwise healthy fleet.
// Never set outside tests.
var mutateGoalOptions func(i int, opt *experiment.GoalOptions)

// containedFault is a panic or stall the session fence recovered: the
// sentinel name it maps to and the triage detail.
type containedFault struct {
	sentinel string
	detail   string
}

// runGoalFenced is the fleet's panic fence around one device session. Any
// panic unwinding RunGoal — a process fault transported by the kernel
// (sim.ProcPanic), a kernel-context panic, or the stall detector's
// sim.ErrStall — is recovered here and handed back as a contained fault
// for the aggregate, instead of killing the whole fleet run. The rig's
// goroutines are already torn down when the fence fires: RunGoal defers
// Kernel.Shutdown.
func runGoalFenced(opt experiment.GoalOptions) (res experiment.GoalResult, cv *containedFault) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch f := r.(type) {
		case *sim.ErrStall:
			cv = &containedFault{sentinel: chaos.SentinelStall, detail: f.Error()}
		case *sim.ProcPanic:
			cv = &containedFault{sentinel: chaos.SentinelPanic, detail: fmt.Sprintf("%v\n%s", f.Error(), f.Stack)}
		default:
			cv = &containedFault{sentinel: chaos.SentinelPanic, detail: fmt.Sprintf("kernel-context panic: %v\n%s", r, sim.CallerStack(1))}
		}
	}()
	return experiment.RunGoal(opt), nil
}

// runSession executes one derived session through the goal-directed
// experiment on a private rig and extracts the mergeable outcome.
func runSession(index int, sess Session) (sessionOutcome, error) {
	var out sessionOutcome
	var buildErr error
	profile := sess.Profile
	opt := experiment.GoalOptions{
		Seed:            sess.Seed,
		InitialEnergy:   sess.InitialEnergy,
		Goal:            sess.Goal,
		Bursty:          sess.Bursty,
		SmartBattery:    sess.SmartBattery,
		Peukert:         sess.Peukert,
		Supervise:       sess.Supervise,
		Apps:            sess.Apps,
		Profile:         &profile,
		CompositePeriod: sess.CompositePeriod,
		Observe: func(rig *env.Rig, em *core.EnergyMonitor) {
			out.Drained = rig.M.Acct.TotalEnergy()
			by := rig.M.Acct.EnergyByPrincipal()
			names := make([]string, 0, len(by))
			for name := range by {
				names = append(names, name)
			}
			sort.Strings(names)
			out.Principals = names
			out.PrincipalJ = make([]float64, len(names))
			for pi, name := range names {
				out.PrincipalJ[pi] = by[name]
			}
		},
	}
	if sess.OffloadServers > 0 {
		opt.Offload = &experiment.OffloadConfig{
			Servers:    sess.OffloadServers,
			Contention: sess.OffloadContention,
			NoHedge:    sess.OffloadNoHedge,
		}
	}
	if sess.Faults != nil {
		spec := *sess.Faults
		opt.Faults = func(rig *env.Rig, bat *smartbattery.Battery, seed int64) *faults.Plan {
			pl, err := spec.Plan(rig.K, chaos.BindRig(rig, bat, nil))
			if err != nil {
				buildErr = err
				return nil
			}
			return pl
		}
	}
	if sess.Misbehave != nil {
		spec := *sess.Misbehave
		opt.Misbehave = func(apps *workload.Apps, seed int64) *faults.Plan {
			pl, err := spec.Plan(apps.Rig.K, chaos.BindRig(apps.Rig, nil, apps))
			if err != nil {
				buildErr = err
				return nil
			}
			return pl
		}
	}
	if mutateGoalOptions != nil {
		mutateGoalOptions(index, &opt)
	}
	res, cv := runGoalFenced(opt)
	if buildErr != nil {
		return out, buildErr
	}
	if cv != nil {
		// The session died mid-flight: its metrics are partial, so the
		// aggregate folds only the containment counters for it.
		out.Contained, out.Detail = cv.sentinel, cv.detail
		return out, nil
	}
	out.Met = res.Met
	out.Residual = res.Residual
	out.RetryJ = res.RetryEnergy
	out.Quarantined = len(res.Quarantined)
	out.Restarts = res.Restarts
	out.FaultEvents = res.FaultEvents
	out.Elapsed = res.EndTime
	for _, name := range workload.Names {
		out.Adaptations += res.Adaptations[name]
	}
	return out, nil
}
