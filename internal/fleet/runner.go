package fleet

import (
	"fmt"
	"io"
	"sort"

	"odyssey/internal/app/env"
	"odyssey/internal/chaos"
	"odyssey/internal/core"
	"odyssey/internal/experiment"
	"odyssey/internal/faults"
	"odyssey/internal/smartbattery"
	"odyssey/internal/workload"
)

// The fleet runner. Sessions are sharded into a FIXED number of contiguous
// index ranges — fixed meaning independent of the worker count — and each
// shard folds its sessions into a private Aggregate in index order; shard
// aggregates then merge in shard-index order. Workers only decide *when* a
// shard's reduction happens, never its content or its place in the final
// merge, so the scorecard is byte-identical at -parallel 1 and -parallel
// 64. Changing the shard count changes the float accumulation geometry
// (like regrouping any float sum), so DefaultShards is part of the replay
// contract.

// DefaultShards is the fixed shard count of the reduction geometry.
const DefaultShards = 64

// RunOptions parameterizes one fleet run.
type RunOptions struct {
	Population Population
	Seed       int64
	Devices    int // device-sessions to run (session-count mode)
	Shards     int // 0 = DefaultShards; clamped to Devices

	// Progress, if non-nil, receives one line per completed shard. It is
	// observability only — never part of the scorecard — so it may carry
	// wall-clock rates. Writes are serialized by the caller's writer.
	Progress io.Writer
}

// Result is a finished fleet run: the merged reduction plus the geometry
// that produced it.
type Result struct {
	Opts RunOptions
	Agg  *Aggregate
}

// shardRange returns the half-open session range of shard s among n
// sessions split into k balanced contiguous shards.
func shardRange(s, k, n int) (int, int) {
	return s * n / k, (s + 1) * n / k
}

// Run executes the fleet: derives each session from (population, seed,
// index), runs it on a private rig, and reduces everything into one
// Aggregate. Memory is O(shards + workers), independent of Devices. The
// error is non-nil only if a derived fault plan failed to materialize —
// a population-model bug, not a device outcome.
func Run(opts RunOptions) (*Result, error) {
	n := opts.Devices
	if n < 0 {
		n = 0
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	if shards > n && n > 0 {
		shards = n
	}
	if n == 0 {
		return &Result{Opts: opts, Agg: NewAggregate()}, nil
	}

	aggs := make([]*Aggregate, shards)
	errs := make([]error, shards)
	experiment.RunTasks(shards, func(s int) {
		agg := NewAggregate()
		lo, hi := shardRange(s, shards, n)
		for i := lo; i < hi; i++ {
			sess := opts.Population.Session(opts.Seed, i)
			out, err := runSession(sess)
			if err != nil {
				errs[s] = fmt.Errorf("fleet: session %d (seed %d): %w", i, sess.Seed, err)
				return
			}
			agg.observe(sess, out)
		}
		aggs[s] = agg
		if opts.Progress != nil {
			_, _ = fmt.Fprintf(opts.Progress, "shard %3d/%d done: sessions %d-%d\n", s+1, shards, lo, hi-1)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	total := NewAggregate()
	for _, agg := range aggs {
		total.Merge(agg)
	}
	return &Result{Opts: opts, Agg: total}, nil
}

// runSession executes one derived session through the goal-directed
// experiment on a private rig and extracts the mergeable outcome.
func runSession(sess Session) (sessionOutcome, error) {
	var out sessionOutcome
	var buildErr error
	profile := sess.Profile
	opt := experiment.GoalOptions{
		Seed:            sess.Seed,
		InitialEnergy:   sess.InitialEnergy,
		Goal:            sess.Goal,
		Bursty:          sess.Bursty,
		SmartBattery:    sess.SmartBattery,
		Peukert:         sess.Peukert,
		Supervise:       sess.Supervise,
		Apps:            sess.Apps,
		Profile:         &profile,
		CompositePeriod: sess.CompositePeriod,
		Observe: func(rig *env.Rig, em *core.EnergyMonitor) {
			out.Drained = rig.M.Acct.TotalEnergy()
			by := rig.M.Acct.EnergyByPrincipal()
			names := make([]string, 0, len(by))
			for name := range by {
				names = append(names, name)
			}
			sort.Strings(names)
			out.Principals = names
			out.PrincipalJ = make([]float64, len(names))
			for pi, name := range names {
				out.PrincipalJ[pi] = by[name]
			}
		},
	}
	if sess.Faults != nil {
		spec := *sess.Faults
		opt.Faults = func(rig *env.Rig, bat *smartbattery.Battery, seed int64) *faults.Plan {
			pl, err := spec.Plan(rig.K, chaos.BindRig(rig, bat, nil))
			if err != nil {
				buildErr = err
				return nil
			}
			return pl
		}
	}
	if sess.Misbehave != nil {
		spec := *sess.Misbehave
		opt.Misbehave = func(apps *workload.Apps, seed int64) *faults.Plan {
			pl, err := spec.Plan(apps.Rig.K, chaos.BindRig(apps.Rig, nil, apps))
			if err != nil {
				buildErr = err
				return nil
			}
			return pl
		}
	}
	res := experiment.RunGoal(opt)
	if buildErr != nil {
		return out, buildErr
	}
	out.Met = res.Met
	out.Residual = res.Residual
	out.RetryJ = res.RetryEnergy
	out.Quarantined = len(res.Quarantined)
	out.Restarts = res.Restarts
	out.FaultEvents = res.FaultEvents
	out.Elapsed = res.EndTime
	for _, name := range workload.Names {
		out.Adaptations += res.Adaptations[name]
	}
	return out, nil
}
