package fleet

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// synthOutcome fabricates a session outcome from a seeded generator — the
// aggregate plumbing doesn't care that no simulation ran.
func synthOutcome(rng *rand.Rand) (Session, sessionOutcome) {
	classes := []string{"flagship", "midrange", "budget", "aged"}
	behaviors := []string{"commuter", "streamer"}
	sess := Session{
		Class:    classes[rng.Intn(len(classes))],
		Behavior: behaviors[rng.Intn(len(behaviors))],
		Goal:     time.Duration(1+rng.Intn(10)) * time.Minute,
		Start:    time.Duration(rng.Intn(3600)) * time.Second,
	}
	out := sessionOutcome{
		Met:         rng.Float64() < 0.9,
		Residual:    rng.Float64() * 5000,
		Drained:     1000 + rng.Float64()*4000,
		RetryJ:      rng.Float64() * 50,
		Quarantined: rng.Intn(2),
		Restarts:    rng.Intn(3),
		Adaptations: rng.Intn(20),
		FaultEvents: rng.Intn(40),
		Principals:  []string{"Idle", "X", "xanim"},
		PrincipalJ:  []float64{rng.Float64() * 900, rng.Float64() * 400, rng.Float64() * 700},
	}
	return sess, out
}

func synthAggregate(seed int64, n int) *Aggregate {
	rng := rand.New(rand.NewSource(seed))
	a := NewAggregate()
	for i := 0; i < n; i++ {
		sess, out := synthOutcome(rng)
		a.observe(sess, out)
	}
	return a
}

// TestAggregateMergeCommutative checks that merge(a,b) and merge(b,a)
// produce byte-identical aggregates — scalar counters, sketches, and all
// map entries — via the exhaustive hex fingerprint.
func TestAggregateMergeCommutative(t *testing.T) {
	build := func() (*Aggregate, *Aggregate) {
		return synthAggregate(100, 700), synthAggregate(200, 300)
	}
	a1, b1 := build()
	a1.Merge(b1)
	a2, b2 := build()
	b2.Merge(a2)
	if fp1, fp2 := a1.Fingerprint(), b2.Fingerprint(); fp1 != fp2 {
		t.Fatalf("merge not commutative:\n--- merge(a,b)\n%s--- merge(b,a)\n%s", fp1, fp2)
	}
}

// TestAggregateMergeCounts checks that merging preserves totals exactly.
func TestAggregateMergeCounts(t *testing.T) {
	a := synthAggregate(1, 400)
	b := synthAggregate(2, 600)
	wantSessions := a.Sessions + b.Sessions
	wantMet := a.GoalMet + b.GoalMet
	wantResidN := a.Residual.Count() + b.Residual.Count()
	a.Merge(b)
	if a.Sessions != wantSessions || a.GoalMet != wantMet {
		t.Fatalf("sessions/met %d/%d, want %d/%d", a.Sessions, a.GoalMet, wantSessions, wantMet)
	}
	if a.Residual.Count() != wantResidN {
		t.Fatalf("residual sketch count %d, want %d", a.Residual.Count(), wantResidN)
	}
	if a.GoalMissRate() < 0 || a.GoalMissRate() > 1 {
		t.Fatalf("goal-miss rate %v out of [0,1]", a.GoalMissRate())
	}
}

// TestAggregateShardGroupingFixed checks the runner's actual reduction
// contract: for a FIXED shard geometry, folding shards serially in shard
// order gives the same bytes no matter how shard work was interleaved —
// because each shard's content depends only on its session range. Here we
// simulate two "schedules" by building shard aggregates in different
// orders and merging in fixed order both times.
func TestAggregateShardGroupingFixed(t *testing.T) {
	const shards = 8
	buildShard := func(s int) *Aggregate { return synthAggregate(int64(1000+s), 50+s*13) }

	// Schedule 1: shards built 0..7. Schedule 2: built 7..0. Merge order
	// is fixed (0..7) in both.
	fold := func(order []int) string {
		built := make([]*Aggregate, shards)
		for _, s := range order {
			built[s] = buildShard(s)
		}
		total := NewAggregate()
		for s := 0; s < shards; s++ {
			total.Merge(built[s])
		}
		return total.Fingerprint()
	}
	fwd := fold([]int{0, 1, 2, 3, 4, 5, 6, 7})
	rev := fold([]int{7, 6, 5, 4, 3, 2, 1, 0})
	if fwd != rev {
		t.Fatal("fixed-order merge depends on shard build order")
	}
}

// TestFingerprintCoversState: two aggregates differing in any single
// reduced quantity must fingerprint differently.
func TestFingerprintCoversState(t *testing.T) {
	base := func() *Aggregate { return synthAggregate(5, 100) }
	mutations := []struct {
		name string
		mut  func(*Aggregate)
	}{
		{"sessions", func(a *Aggregate) { a.Sessions++ }},
		{"goalmet", func(a *Aggregate) { a.GoalMet++ }},
		{"quarantines", func(a *Aggregate) { a.Quarantines++ }},
		{"residual", func(a *Aggregate) { a.Residual.Observe(123) }},
		{"energy", func(a *Aggregate) { a.Energy.Observe(1) }},
		{"principal", func(a *Aggregate) { a.ByPrincipal["Idle"].Observe(5) }},
		{"class", func(a *Aggregate) { a.ByClass["aged"].GoalMet++ }},
	}
	ref := base().Fingerprint()
	for _, m := range mutations {
		a := base()
		m.mut(a)
		if a.Fingerprint() == ref {
			t.Errorf("fingerprint blind to %s mutation", m.name)
		}
	}
}

// TestShardRange checks the balanced contiguous partition: disjoint,
// ordered, covering [0, n) exactly.
func TestShardRange(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{1, 10}, {4, 10}, {10, 10}, {64, 1000}, {7, 3000}, {3, 4}} {
		next := 0
		for s := 0; s < tc.k; s++ {
			lo, hi := shardRange(s, tc.k, tc.n)
			if lo != next || hi < lo {
				t.Fatalf("k=%d n=%d shard %d: range [%d,%d) after %d", tc.k, tc.n, s, lo, hi, next)
			}
			next = hi
		}
		if next != tc.n {
			t.Fatalf("k=%d n=%d: covered %d of %d", tc.k, tc.n, next, tc.n)
		}
	}
}

// TestSessionDerivationPure: session i is a pure function of (population,
// seed, i).
func TestSessionDerivationPure(t *testing.T) {
	pop := DefaultPopulation()
	for i := 0; i < 50; i++ {
		s1 := pop.Session(99, i)
		s2 := pop.Session(99, i)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("session %d not pure:\n%+v\n%+v", i, s1, s2)
		}
	}
	if reflect.DeepEqual(pop.Session(99, 0), pop.Session(100, 0)) {
		t.Fatal("different fleet seeds derived identical sessions")
	}
}
