package fleet

import (
	"fmt"
	"io"
	"strings"

	"odyssey/internal/textplot"
)

// The fleet scorecard: a deterministic text report over the merged
// aggregate. Everything printed here derives from the aggregate and the
// run geometry — no wall-clock, no worker count — so the determinism gate
// can compare scorecards byte for byte across -parallel widths.

// dashboardQs are the percentile sample points of the dashboard curves.
var dashboardQs = []float64{0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}

// Scorecard renders the fleet report to w. withDashboard adds the
// textplot percentile dashboards under the summary tables.
func (r *Result) Scorecard(w io.Writer, withDashboard bool) {
	_, _ = io.WriteString(w, r.ScorecardString(withDashboard))
}

// ScorecardString renders the scorecard. Builder writes cannot fail, so
// the renderer is infallible; Scorecard adapts it to an io.Writer.
func (r *Result) ScorecardString(withDashboard bool) string {
	var b strings.Builder
	r.render(&b, withDashboard)
	return b.String()
}

func (r *Result) render(w *strings.Builder, withDashboard bool) {
	a := r.Agg
	fmt.Fprintf(w, "fleet scorecard: population=%s seed=%d devices=%d shards=%d\n",
		r.Opts.Population.Name, r.Opts.Seed, r.Opts.Devices, r.shards())
	if r.Interrupted {
		fmt.Fprintf(w, "PARTIAL: %d of %d shards reduced (%d skipped after interrupt)\n",
			r.RanShards+r.ReplayedShards, r.shards(), r.SkippedShards)
	}
	if a.Sessions == 0 {
		fmt.Fprintln(w, "no sessions")
		return
	}
	fmt.Fprintf(w, "sessions=%d goal-met=%d (%.2f%%) goal-miss-rate=%.4f\n",
		a.Sessions, a.GoalMet, 100*float64(a.GoalMet)/float64(a.Sessions), a.GoalMissRate())
	fmt.Fprintf(w, "quarantines=%d (rate %.4f/session) restarts=%d adaptations=%d fault-events=%d\n",
		a.Quarantines, a.QuarantineRate(), a.Restarts, a.Adaptations, a.FaultEvents)
	if a.ContainedPanics+a.ContainedStalls > 0 {
		fmt.Fprintf(w, "contained: panics=%d stalls=%d (counted as goal misses; partial metrics not folded)\n",
			a.ContainedPanics, a.ContainedStalls)
	}
	fmt.Fprintf(w, "session length: p50=%.1fm p95=%.1fm  start stagger: p50=%.1fm p95=%.1fm  avg concurrency=%.1f\n",
		a.SessionMin.Quantile(0.50), a.SessionMin.Quantile(0.95),
		a.StartMin.Quantile(0.50), a.StartMin.Quantile(0.95),
		a.avgConcurrency(r.Opts.Population))
	fmt.Fprintf(w, "residual J: p50=%.0f p95=%.0f p99=%.0f max-err=±%.1f%%\n",
		a.Residual.Quantile(0.50), a.Residual.Quantile(0.95), a.Residual.Quantile(0.99),
		100*a.Residual.RelErrBound())
	fmt.Fprintf(w, "energy/session J: mean=%.0f min=%.0f max=%.0f  retry J: mean=%.1f max=%.0f\n",
		a.Energy.Mean(), a.Energy.Min, a.Energy.Max, a.RetryJ.Mean(), a.RetryJ.Max)

	fmt.Fprintln(w, "\nper-principal energy (J/session):")
	for _, k := range sortedKeysAgg(a.ByPrincipal) {
		p := a.ByPrincipal[k]
		fmt.Fprintf(w, "  %-14s mean=%9.1f max=%9.1f (%d sessions)\n", k, p.Mean(), p.Max, p.Count)
	}

	for _, grp := range []struct {
		label string
		names []string
		m     map[string]*GroupAgg
	}{
		{"device class", r.classOrder(), a.ByClass},
		{"behavior", r.behaviorOrder(), a.ByBehavior},
	} {
		fmt.Fprintf(w, "\nby %s:\n", grp.label)
		fmt.Fprintf(w, "  %-12s %9s %8s %10s %10s %10s\n", grp.label, "sessions", "met%", "resid-p50", "resid-p95", "energy")
		for _, name := range grp.names {
			g := grp.m[name]
			if g == nil {
				continue
			}
			met := 0.0
			if g.Sessions > 0 {
				met = 100 * float64(g.GoalMet) / float64(g.Sessions)
			}
			fmt.Fprintf(w, "  %-12s %9d %7.2f%% %10.0f %10.0f %10.0f\n",
				name, g.Sessions, met, g.Residual.Quantile(0.50), g.Residual.Quantile(0.95), g.Energy.Mean())
		}
	}

	if withDashboard {
		fmt.Fprintln(w)
		r.dashboard(w)
	}
}

// shards reports the effective shard count of the run geometry.
func (r *Result) shards() int {
	s := r.Opts.Shards
	if s <= 0 {
		s = DefaultShards
	}
	if r.Opts.Devices > 0 && s > r.Opts.Devices {
		s = r.Opts.Devices
	}
	return s
}

// classOrder lists device-class names in population declaration order —
// the scorecard's stable row order.
func (r *Result) classOrder() []string {
	names := make([]string, len(r.Opts.Population.Classes))
	for i := range r.Opts.Population.Classes {
		names[i] = r.Opts.Population.Classes[i].Name
	}
	return names
}

func (r *Result) behaviorOrder() []string {
	names := make([]string, len(r.Opts.Population.Behaviors))
	for i := range r.Opts.Population.Behaviors {
		names[i] = r.Opts.Population.Behaviors[i].Name
	}
	return names
}

// avgConcurrency estimates the mean number of concurrently live sessions
// across the churn horizon: total session-minutes over horizon minutes.
// It is exact for the aggregate (sums are mergeable) even though no two
// rigs ever actually share a clock.
func (a *Aggregate) avgConcurrency(p Population) float64 {
	if p.Horizon <= 0 {
		return float64(a.Sessions)
	}
	return a.SessionMin.ApproxSum() / p.Horizon.Minutes()
}

// dashboard renders the percentile dashboards: residual energy per device
// class and session length fleet-wide, each as quantile curves.
func (r *Result) dashboard(w *strings.Builder) {
	a := r.Agg
	resid := textplot.New("residual energy by percentile (J)", 64, 12)
	resid.XLabel = "percentile"
	resid.YLabel = "J"
	fleetX, fleetY := quantileCurve(a.Residual)
	resid.Add(textplot.Series{Name: "fleet", X: fleetX, Y: fleetY})
	for _, name := range r.classOrder() {
		g := a.ByClass[name]
		if g == nil || g.Residual.Count() == 0 {
			continue
		}
		x, y := quantileCurve(g.Residual)
		resid.Add(textplot.Series{Name: name, X: x, Y: y})
	}
	w.WriteString(resid.String())

	length := textplot.New("session length by percentile (min)", 64, 10)
	length.XLabel = "percentile"
	length.YLabel = "min"
	lx, ly := quantileCurve(a.SessionMin)
	length.Add(textplot.Series{Name: "fleet", X: lx, Y: ly})
	sx, sy := quantileCurve(a.StartMin)
	length.Add(textplot.Series{Name: "start-offset", X: sx, Y: sy})
	w.WriteString(length.String())
}

// quantileCurve samples a sketch at the dashboard percentiles.
func quantileCurve(s *Sketch) (x, y []float64) {
	x = make([]float64, len(dashboardQs))
	y = make([]float64, len(dashboardQs))
	for i, q := range dashboardQs {
		x[i] = 100 * q
		y[i] = s.Quantile(q)
	}
	return x, y
}
