package fleet

import (
	"strings"
	"testing"
	"time"

	"odyssey/internal/experiment"
	"odyssey/internal/workload"
)

// TestSessionValidity derives a swath of sessions and checks every one is
// runnable: valid app names, positive supply, sane goal, Peukert only on
// smart batteries, class and behavior names from the population.
func TestSessionValidity(t *testing.T) {
	pop := DefaultPopulation()
	valid := map[string]bool{}
	for _, n := range workload.Names {
		valid[n] = true
	}
	classes := map[string]bool{}
	for _, c := range pop.Classes {
		classes[c.Name] = true
	}
	behaviors := map[string]bool{}
	for _, b := range pop.Behaviors {
		behaviors[b.Name] = true
	}
	for i := 0; i < 2000; i++ {
		s := pop.Session(3, i)
		if len(s.Apps) == 0 {
			t.Fatalf("session %d: empty app set", i)
		}
		for _, a := range s.Apps {
			if !valid[a] {
				t.Fatalf("session %d: unknown app %q", i, a)
			}
		}
		if !classes[s.Class] || !behaviors[s.Behavior] {
			t.Fatalf("session %d: unknown class/behavior %q/%q", i, s.Class, s.Behavior)
		}
		if s.InitialEnergy <= 0 || s.Goal < 30*time.Second {
			t.Fatalf("session %d: degenerate supply %.1fJ goal %v", i, s.InitialEnergy, s.Goal)
		}
		if !s.SmartBattery && s.Peukert != 0 {
			t.Fatalf("session %d: Peukert %v without a smart battery", i, s.Peukert)
		}
		if s.Start < 0 || s.Start >= pop.Horizon {
			t.Fatalf("session %d: start %v outside horizon %v", i, s.Start, pop.Horizon)
		}
		if s.Misbehave != nil {
			for _, inj := range s.Misbehave.Injectors {
				enabled := false
				for _, a := range s.Apps {
					if inj.Target == a {
						enabled = true
					}
				}
				if !enabled {
					t.Fatalf("session %d: misbehavior aims at disabled app %q", i, inj.Target)
				}
			}
		}
	}
}

// TestPopulationMixRates checks the weighted draws land near their
// weights over a large derived sample (derivation only — nothing runs).
func TestPopulationMixRates(t *testing.T) {
	pop := DefaultPopulation()
	classN := map[string]int{}
	behaviorN := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		s := pop.Session(8, i)
		classN[s.Class]++
		behaviorN[s.Behavior]++
	}
	for _, c := range pop.Classes {
		got := float64(classN[c.Name]) / n
		if got < c.Weight-0.05 || got > c.Weight+0.05 {
			t.Errorf("class %s: frequency %.3f, weight %.3f", c.Name, got, c.Weight)
		}
	}
	for _, b := range pop.Behaviors {
		got := float64(behaviorN[b.Name]) / n
		if got < b.Weight-0.05 || got > b.Weight+0.05 {
			t.Errorf("behavior %s: frequency %.3f, weight %.3f", b.Name, got, b.Weight)
		}
	}
}

// TestFleetParallelSerialEquivalence is the scorecard determinism gate in
// miniature: the same fleet reduced at parallelism 1 and 4 must produce
// byte-identical aggregates and scorecards.
func TestFleetParallelSerialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~100 goal sessions")
	}
	opts := RunOptions{Population: DefaultPopulation(), Seed: 21, Devices: 96, Shards: 16}

	old := experiment.Parallelism()
	defer experiment.SetParallelism(old)

	experiment.SetParallelism(1)
	serial, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	experiment.SetParallelism(4)
	par, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sf, pf := serial.Agg.Fingerprint(), par.Agg.Fingerprint(); sf != pf {
		t.Fatalf("aggregates diverge across parallelism:\n--- serial\n%s--- parallel\n%s", sf, pf)
	}
	ss, ps := serial.ScorecardString(true), par.ScorecardString(true)
	if ss != ps {
		t.Fatal("scorecards diverge across parallelism")
	}
	if serial.Agg.Sessions != 96 {
		t.Fatalf("sessions %d, want 96", serial.Agg.Sessions)
	}
	if !strings.Contains(ss, "by device class:") || !strings.Contains(ss, "percentile") {
		t.Fatal("scorecard missing expected sections")
	}
}

// TestFleetRunReplay: two runs of the same options are byte-identical —
// the fixed-seed replay contract.
func TestFleetRunReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~60 goal sessions")
	}
	opts := RunOptions{Population: DefaultPopulation(), Seed: 5, Devices: 30, Shards: 8}
	r1, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Agg.Fingerprint() != r2.Agg.Fingerprint() {
		t.Fatal("same-seed fleet runs diverge")
	}
}

// TestFleetEmpty: a zero-device run yields an empty but renderable result.
func TestFleetEmpty(t *testing.T) {
	r, err := Run(RunOptions{Population: DefaultPopulation(), Seed: 1, Devices: 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Agg.Sessions != 0 {
		t.Fatalf("sessions %d, want 0", r.Agg.Sessions)
	}
	if !strings.Contains(r.ScorecardString(false), "no sessions") {
		t.Fatal("empty scorecard missing placeholder")
	}
}
