package fleet

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile computes the nearest-rank quantile the sketch promises to
// approximate, from the raw values.
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[rank]
}

// TestSketchErrorBounds checks the advertised relative error bound against
// exact quantiles on known distributions: uniform, exponential (heavy
// head), and lognormal (heavy tail, five decades of dynamic range).
func TestSketchErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := []struct {
		name string
		draw func() float64
	}{
		{"uniform", func() float64 { return 1 + 999*rng.Float64() }},
		{"exponential", func() float64 { return rng.ExpFloat64() * 120 }},
		{"lognormal", func() float64 { return math.Exp(rng.NormFloat64()*2 + 3) }},
	}
	qs := []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}
	for _, d := range dists {
		s := NewSketch()
		vals := make([]float64, 0, 50_000)
		for i := 0; i < 50_000; i++ {
			v := d.draw()
			vals = append(vals, v)
			s.Observe(v)
		}
		sort.Float64s(vals)
		if s.Count() != int64(len(vals)) {
			t.Fatalf("%s: count %d, want %d", d.name, s.Count(), len(vals))
		}
		bound := s.RelErrBound()
		for _, q := range qs {
			got := s.Quantile(q)
			want := exactQuantile(vals, q)
			relErr := math.Abs(got-want) / want
			if relErr > bound {
				t.Errorf("%s p%.0f: sketch %.4f vs exact %.4f (rel err %.4f > bound %.4f)",
					d.name, 100*q, got, want, relErr, bound)
			}
		}
	}
}

// TestSketchMergeCommutative checks merge(a,b) == merge(b,a) byte for byte.
// Sketch state is fixed arrays of integer counts, so plain struct equality
// is the byte-identity check.
func TestSketchMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := NewSketch(), NewSketch()
	for i := 0; i < 10_000; i++ {
		a.Observe(rng.ExpFloat64() * 100)
		b.Observe(rng.NormFloat64() * 50) // includes negatives
		if i%500 == 0 {
			b.Observe(0)
		}
	}
	ab, ba := *a, *b
	ab.Merge(b)
	ba.Merge(a)
	if ab != ba {
		t.Fatal("merge(a,b) and merge(b,a) differ")
	}
	if ab.Count() != a.Count()+b.Count() {
		t.Fatalf("merged count %d, want %d", ab.Count(), a.Count()+b.Count())
	}
	// Merge must also match single-sketch observation of the union.
	for _, q := range []float64{0.05, 0.5, 0.95} {
		u := NewSketch()
		u.Merge(a)
		u.Merge(b)
		if u.Quantile(q) != ab.Quantile(q) {
			t.Errorf("p%.0f differs between merge orders", 100*q)
		}
	}
}

// TestSketchSignsAndExtremes covers the zero bucket, the negative mirror,
// and the clamping of out-of-range magnitudes.
func TestSketchSignsAndExtremes(t *testing.T) {
	s := NewSketch()
	for _, v := range []float64{-100, -1, 0, 0, 1, 100} {
		s.Observe(v)
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("median of symmetric set = %v, want 0", got)
	}
	if got := s.Quantile(0); got >= -99 {
		t.Errorf("p0 = %v, want ~-100", got)
	}
	if got := s.Quantile(1); got <= 99 {
		t.Errorf("p100 = %v, want ~+100", got)
	}

	ext := NewSketch()
	ext.Observe(math.Inf(1))
	ext.Observe(math.Inf(-1))
	ext.Observe(1e300)
	ext.Observe(5e-20)
	ext.Observe(math.NaN())
	if ext.Count() != 4 {
		t.Fatalf("count %d, want 4 (NaN ignored)", ext.Count())
	}
	if got := ext.Quantile(1); math.IsInf(got, 0) || got <= 0 {
		t.Errorf("clamped +Inf quantile = %v, want large finite positive", got)
	}

	// Quantiles must be monotone in q.
	rng := rand.New(rand.NewSource(3))
	m := NewSketch()
	for i := 0; i < 5000; i++ {
		m.Observe(rng.NormFloat64() * 10)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := m.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%.2f: %v < %v", q, v, prev)
		}
		prev = v
	}
}

// TestSketchApproxSum checks the midpoint-sum estimate against the true
// sum within the relative error bound.
func TestSketchApproxSum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewSketch()
	var exact float64
	for i := 0; i < 20_000; i++ {
		v := rng.ExpFloat64() * 7
		exact += v
		s.Observe(v)
	}
	got := s.ApproxSum()
	if rel := math.Abs(got-exact) / exact; rel > s.RelErrBound() {
		t.Fatalf("approx sum %.2f vs exact %.2f (rel err %.5f)", got, exact, rel)
	}
}
