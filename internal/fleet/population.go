package fleet

import (
	"math/rand"
	"time"

	"odyssey/internal/chaos"
	"odyssey/internal/faults"
	"odyssey/internal/hw"
	"odyssey/internal/workload"
)

// The population model. A fleet is a weighted mix of device classes (how
// the hardware drinks energy) crossed with a weighted mix of user
// behaviors (how the user spends it), plus staggered session churn across
// a horizon. Session i of a run is a pure function of (population, fleet
// seed, i): every parameter below is drawn from a private generator seeded
// by mixing the fleet seed with the index, so any session can be
// re-derived — and re-run — in isolation, and the whole fleet replays
// byte-identically from one seed.

// Range is a closed uniform draw interval.
type Range struct{ Lo, Hi float64 }

func (r Range) draw(rng *rand.Rand) float64 {
	if r.Hi <= r.Lo {
		return r.Lo
	}
	return r.Lo + (r.Hi-r.Lo)*rng.Float64()
}

// DurRange is a closed uniform draw interval over durations, quantized to
// seconds (session-length granularity).
type DurRange struct{ Lo, Hi time.Duration }

func (r DurRange) draw(rng *rand.Rand) time.Duration {
	if r.Hi <= r.Lo {
		return r.Lo
	}
	d := r.Lo + time.Duration(rng.Int63n(int64(r.Hi-r.Lo)+1))
	return d.Round(time.Second)
}

// DeviceClass describes one hardware variant in the fleet: a scaling of
// the baseline power profile, a battery-capacity factor over the nominal
// supply, and the battery instrumentation the class ships with.
type DeviceClass struct {
	Name   string
	Weight float64

	Power   Range // multiplier on every power rail of the base profile
	Link    Range // multiplier on wireless link bandwidth
	Battery Range // multiplier on the nominal supply sizing

	SmartBattery float64 // probability the device has a monitoring circuit
	Peukert      Range   // capacity exponent drawn for smart batteries
}

// Behavior describes one user archetype: which applications they run, how
// hard they drive them, and how long their sessions last.
type Behavior struct {
	Name   string
	Weight float64

	// AppP is the per-application enable probability, aligned index-for-
	// index with workload.Names. A draw that enables nothing falls back to
	// the archetype's highest-probability application.
	AppP []float64

	Bursty    float64  // probability of the bursty interactive workload
	Goal      DurRange // session length
	Period    Range    // multiplier on the composite workload period
	Supervise float64  // probability the supervision plane is on
	FaultP    float64  // probability of an environmental fault mix
	MisP      float64  // probability of an application-misbehavior mix
	OffloadP  float64  // probability the offload plane is armed
}

// Population is the full fleet description.
type Population struct {
	Name      string
	Base      hw.Profile
	Classes   []DeviceClass
	Behaviors []Behavior

	// Watts sizes the nominal supply: a session's initial energy is a
	// draw from this band times the class battery factor times the goal
	// length, so some sessions are comfortable and some are infeasible.
	Watts Range

	// Horizon is the churn window: session starts are staggered uniformly
	// across it, so fleet concurrency ramps and drains instead of
	// thundering.
	Horizon time.Duration
}

// DefaultPopulation is the reference fleet: four device classes from
// flagship to aged hardware crossed with four user archetypes, over the
// ThinkPad-560X baseline profile.
func DefaultPopulation() Population {
	return Population{
		Name: "default",
		Base: hw.ThinkPad560X(),
		Classes: []DeviceClass{
			{
				Name: "flagship", Weight: 0.25,
				Power: Range{0.82, 0.95}, Link: Range{1.2, 1.6}, Battery: Range{1.4, 1.8},
				SmartBattery: 0.9, Peukert: Range{1.0, 1.05},
			},
			{
				Name: "midrange", Weight: 0.40,
				Power: Range{0.95, 1.05}, Link: Range{0.9, 1.2}, Battery: Range{1.0, 1.3},
				SmartBattery: 0.7, Peukert: Range{1.0, 1.1},
			},
			{
				Name: "budget", Weight: 0.25,
				Power: Range{1.05, 1.2}, Link: Range{0.6, 0.9}, Battery: Range{0.8, 1.0},
				SmartBattery: 0.5, Peukert: Range{1.05, 1.15},
			},
			{
				Name: "aged", Weight: 0.10,
				Power: Range{1.0, 1.15}, Link: Range{0.8, 1.0}, Battery: Range{0.55, 0.8},
				SmartBattery: 1.0, Peukert: Range{1.1, 1.3},
			},
		},
		Behaviors: []Behavior{
			{
				Name: "commuter", Weight: 0.35,
				AppP:   []float64{0.5, 0.6, 0.7, 0.8},
				Bursty: 0.25, Goal: DurRange{2 * time.Minute, 5 * time.Minute},
				Period: Range{0.8, 1.2}, Supervise: 0.6, FaultP: 0.2, MisP: 0.1, OffloadP: 0.3,
			},
			{
				Name: "streamer", Weight: 0.25,
				AppP:   []float64{0.2, 1.0, 0.2, 0.4},
				Bursty: 0.0, Goal: DurRange{3 * time.Minute, 7 * time.Minute},
				Period: Range{1.2, 2.0}, Supervise: 0.5, FaultP: 0.25, MisP: 0.05, OffloadP: 0.35,
			},
			{
				Name: "browser", Weight: 0.25,
				AppP:   []float64{0.3, 0.2, 0.8, 1.0},
				Bursty: 0.5, Goal: DurRange{90 * time.Second, 3 * time.Minute},
				Period: Range{0.6, 1.0}, Supervise: 0.5, FaultP: 0.2, MisP: 0.1, OffloadP: 0.25,
			},
			{
				Name: "fieldworker", Weight: 0.15,
				AppP:   []float64{0.9, 0.3, 0.9, 0.5},
				Bursty: 0.3, Goal: DurRange{2 * time.Minute, 6 * time.Minute},
				Period: Range{0.8, 1.4}, Supervise: 0.8, FaultP: 0.4, MisP: 0.15, OffloadP: 0.5,
			},
		},
		Watts:   Range{12, 26},
		Horizon: time.Hour,
	}
}

// Session is one device-session, fully derived: everything the runner
// needs to execute it through experiment.RunGoal.
type Session struct {
	Index    int
	Seed     int64
	Class    string
	Behavior string

	Profile         hw.Profile
	InitialEnergy   float64
	Goal            time.Duration
	Start           time.Duration // stagger offset within the churn window
	Apps            []string
	Bursty          bool
	CompositePeriod time.Duration
	SmartBattery    bool
	Peukert         float64
	Supervise       bool

	Faults    *faults.PlanSpec
	Misbehave *faults.PlanSpec

	// Offload plane (zero OffloadServers = disarmed, legacy paths).
	OffloadServers    int
	OffloadContention float64
	OffloadNoHedge    bool
}

// mix64 combines the fleet seed and a session index into an independent
// session seed (splitmix64 finalizer over their xor-fold).
func mix64(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// pickWeighted draws an index from the weight vector. Weights need not be
// normalized; a non-positive total falls back to index 0.
func pickWeighted(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := rng.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// compositePeriodBase mirrors the goal experiment's default composite
// workload period; behavior period factors scale it.
const compositePeriodBase = 25 * time.Second

// Session derives device-session i of the fleet run seeded by fleetSeed.
// The draw order below is part of the replay contract — reordering any
// draw changes every scorecard byte — so extensions must append draws,
// never interleave them.
func (p Population) Session(fleetSeed int64, i int) Session {
	sess := Session{Index: i, Seed: mix64(fleetSeed, i)}
	rng := rand.New(rand.NewSource(sess.Seed))

	// 1. Device class and its hardware draw.
	cw := make([]float64, len(p.Classes))
	for ci := range p.Classes {
		cw[ci] = p.Classes[ci].Weight
	}
	cls := p.Classes[pickWeighted(rng, cw)]
	sess.Class = cls.Name
	sess.Profile = p.Base.Scaled(cls.Power.draw(rng), cls.Link.draw(rng))
	batteryFactor := cls.Battery.draw(rng)
	sess.SmartBattery = rng.Float64() < cls.SmartBattery
	if sess.SmartBattery {
		sess.Peukert = cls.Peukert.draw(rng)
	}

	// 2. Behavior and its workload draw.
	bw := make([]float64, len(p.Behaviors))
	for bi := range p.Behaviors {
		bw[bi] = p.Behaviors[bi].Weight
	}
	beh := p.Behaviors[pickWeighted(rng, bw)]
	sess.Behavior = beh.Name
	best := 0
	for ai, name := range workload.Names {
		pEnable := 0.0
		if ai < len(beh.AppP) {
			pEnable = beh.AppP[ai]
		}
		if rng.Float64() < pEnable {
			sess.Apps = append(sess.Apps, name)
		}
		if ai < len(beh.AppP) && beh.AppP[ai] > beh.AppP[best] {
			best = ai
		}
	}
	if len(sess.Apps) == 0 {
		sess.Apps = []string{workload.Names[best]}
	}
	sess.Bursty = rng.Float64() < beh.Bursty
	sess.Goal = beh.Goal.draw(rng)
	sess.CompositePeriod = time.Duration(float64(compositePeriodBase) * beh.Period.draw(rng)).Round(time.Millisecond)
	sess.Supervise = rng.Float64() < beh.Supervise

	// 3. Supply sizing and churn placement.
	sess.InitialEnergy = p.Watts.draw(rng) * batteryFactor * sess.Goal.Seconds()
	if p.Horizon > 0 {
		sess.Start = time.Duration(rng.Int63n(int64(p.Horizon))).Round(time.Second)
	}

	// 4. Weather: fault and misbehavior mixes reuse the chaos soak's
	// injector distributions, so any fleet anomaly has a chaos scenario
	// shaped like it.
	if rng.Float64() < beh.FaultP {
		n := 1 + rng.Intn(2)
		sess.Faults = chaos.RandomFaultPlan(rng, "fleet-faults", faultSeed(sess.Seed), sess.SmartBattery, n)
	}
	if rng.Float64() < beh.MisP {
		n := 1 + rng.Intn(2)
		sess.Misbehave = chaos.RandomMisbehavePlan(rng, "fleet-misbehave", misbehaveSeed(sess.Seed), sess.Apps, n)
	}

	// 5. Offload plane (appended after every pre-existing draw, per the
	// contract above). The parameter draws happen unconditionally so a
	// future step 6 sees the same stream whether or not the plane armed.
	armed := rng.Float64() < beh.OffloadP
	servers := 2 + rng.Intn(3)
	contention := 0.8 * rng.Float64()
	noHedge := rng.Float64() < 0.25
	if armed {
		sess.OffloadServers = servers
		sess.OffloadContention = contention
		sess.OffloadNoHedge = noHedge
	}
	return sess
}

// Plan-seed derivation, matching the convention the chaos and experiment
// planes use: each plane draws from its own stream.
func faultSeed(seed int64) int64     { return seed*2654435761 + 131 }
func misbehaveSeed(seed int64) int64 { return seed*2654435761 + 223 }
