package fleet

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"odyssey/internal/chaos"
)

// Agg is a streaming count/sum/min/max accumulator. Merge adds sums and
// counts and takes min/max of extremes — all exactly commutative, so the
// shard reduction can fold in any grouping as long as the *order of
// observations within a shard* is fixed (float addition is commutative but
// not associative; the fleet runner fixes both the within-shard fold order
// and the shard merge order).
type Agg struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// Observe folds one value into the accumulator.
func (a *Agg) Observe(v float64) {
	if a.Count == 0 || v < a.Min {
		a.Min = v
	}
	if a.Count == 0 || v > a.Max {
		a.Max = v
	}
	a.Count++
	a.Sum += v
}

// Merge folds b into a.
func (a *Agg) Merge(b Agg) {
	if b.Count == 0 {
		return
	}
	if a.Count == 0 {
		*a = b
		return
	}
	if b.Min < a.Min {
		a.Min = b.Min
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
	a.Count += b.Count
	a.Sum += b.Sum
}

// Mean reports the running mean, or 0 when empty.
func (a Agg) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// GroupAgg is the per-group (device-class or behavior) slice of the fleet
// reduction: enough to rank groups by goal attainment and residual shape.
type GroupAgg struct {
	Sessions int64
	GoalMet  int64
	Residual *Sketch
	Energy   Agg
}

func newGroupAgg() *GroupAgg { return &GroupAgg{Residual: NewSketch()} }

func (g *GroupAgg) merge(o *GroupAgg) {
	g.Sessions += o.Sessions
	g.GoalMet += o.GoalMet
	g.Residual.Merge(o.Residual)
	g.Energy.Merge(o.Energy)
}

// Aggregate is the full mergeable reduction of a set of fleet sessions.
// Memory is fixed: a handful of sketches and small maps keyed by principal
// and group name, independent of how many sessions it has absorbed.
type Aggregate struct {
	Sessions    int64
	GoalMet     int64
	Quarantines int64 // applications quarantined, summed over sessions
	Restarts    int64
	Adaptations int64
	FaultEvents int64

	// ContainedPanics/ContainedStalls count sessions the runner's
	// containment fence recovered: a panic transported out of the rig, or
	// the kernel's virtual-time stall detector. Contained sessions count
	// toward Sessions (they are goal misses) but their outcome-derived
	// metrics are partial garbage and are NOT folded into the sketches or
	// energy ledgers below.
	ContainedPanics int64
	ContainedStalls int64

	Residual   *Sketch // residual energy at session end (J)
	SessionMin *Sketch // session goal length (minutes)
	StartMin   *Sketch // session start offset within the churn window (minutes)
	Energy     Agg     // drained energy per session (J)
	RetryJ     Agg     // energy burned in fault retries per session (J)

	ByPrincipal map[string]*Agg      // per-session energy by accounting principal (J)
	ByClass     map[string]*GroupAgg // keyed by device-class name
	ByBehavior  map[string]*GroupAgg // keyed by behavior name
}

// NewAggregate returns an empty reduction.
func NewAggregate() *Aggregate {
	return &Aggregate{
		Residual:    NewSketch(),
		SessionMin:  NewSketch(),
		StartMin:    NewSketch(),
		ByPrincipal: map[string]*Agg{},
		ByClass:     map[string]*GroupAgg{},
		ByBehavior:  map[string]*GroupAgg{},
	}
}

// sortedKeys collects map keys in deterministic order.
func sortedKeysAgg(m map[string]*Agg) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeysGroup(m map[string]*GroupAgg) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Merge folds o into a. Scalar counters and sketches merge commutatively;
// map entries merge key-wise in sorted key order, so merge(a,b) and
// merge(b,a) produce byte-identical aggregates when a and b were built from
// disjoint session ranges each folded in index order.
func (a *Aggregate) Merge(o *Aggregate) {
	a.Sessions += o.Sessions
	a.GoalMet += o.GoalMet
	a.Quarantines += o.Quarantines
	a.Restarts += o.Restarts
	a.Adaptations += o.Adaptations
	a.FaultEvents += o.FaultEvents
	a.ContainedPanics += o.ContainedPanics
	a.ContainedStalls += o.ContainedStalls
	a.Residual.Merge(o.Residual)
	a.SessionMin.Merge(o.SessionMin)
	a.StartMin.Merge(o.StartMin)
	a.Energy.Merge(o.Energy)
	a.RetryJ.Merge(o.RetryJ)

	for _, k := range sortedKeysAgg(o.ByPrincipal) {
		dst := a.ByPrincipal[k]
		if dst == nil {
			dst = &Agg{}
			a.ByPrincipal[k] = dst
		}
		dst.Merge(*o.ByPrincipal[k])
	}
	for _, k := range sortedKeysGroup(o.ByClass) {
		dst := a.ByClass[k]
		if dst == nil {
			dst = newGroupAgg()
			a.ByClass[k] = dst
		}
		dst.merge(o.ByClass[k])
	}
	for _, k := range sortedKeysGroup(o.ByBehavior) {
		dst := a.ByBehavior[k]
		if dst == nil {
			dst = newGroupAgg()
			a.ByBehavior[k] = dst
		}
		dst.merge(o.ByBehavior[k])
	}
}

// observe folds one finished session into the reduction. A contained
// session (panic or stall recovered by the runner's fence) counts toward
// Sessions and its contained counter; everything else about it is a
// partial measurement of a run that died mid-flight, so only the
// session-spec sketches (goal length, start stagger) are folded.
func (a *Aggregate) observe(sess Session, out sessionOutcome) {
	a.Sessions++
	a.SessionMin.Observe(sess.Goal.Minutes())
	a.StartMin.Observe(sess.Start.Minutes())
	switch out.Contained {
	case "":
	case chaos.SentinelStall:
		a.ContainedStalls++
		return
	default:
		a.ContainedPanics++
		return
	}
	if out.Met {
		a.GoalMet++
	}
	a.Quarantines += int64(out.Quarantined)
	a.Restarts += int64(out.Restarts)
	a.Adaptations += int64(out.Adaptations)
	a.FaultEvents += int64(out.FaultEvents)
	a.Residual.Observe(out.Residual)
	a.Energy.Observe(out.Drained)
	a.RetryJ.Observe(out.RetryJ)

	for i, name := range out.Principals {
		dst := a.ByPrincipal[name]
		if dst == nil {
			dst = &Agg{}
			a.ByPrincipal[name] = dst
		}
		dst.Observe(out.PrincipalJ[i])
	}
	for _, g := range []struct {
		m   map[string]*GroupAgg
		key string
	}{
		{a.ByClass, sess.Class},
		{a.ByBehavior, sess.Behavior},
	} {
		dst := g.m[g.key]
		if dst == nil {
			dst = newGroupAgg()
			g.m[g.key] = dst
		}
		dst.Sessions++
		if out.Met {
			dst.GoalMet++
		}
		dst.Residual.Observe(out.Residual)
		dst.Energy.Observe(out.Drained)
	}
}

// GoalMissRate is the fraction of sessions that missed their energy goal.
func (a *Aggregate) GoalMissRate() float64 {
	if a.Sessions == 0 {
		return 0
	}
	return float64(a.Sessions-a.GoalMet) / float64(a.Sessions)
}

// QuarantineRate is the mean number of quarantined applications per session.
func (a *Aggregate) QuarantineRate() float64 {
	if a.Sessions == 0 {
		return 0
	}
	return float64(a.Quarantines) / float64(a.Sessions)
}

// Fingerprint renders every field of the aggregate — counters, sketch
// quantiles at fine grain, and all map entries in sorted key order — with
// floats in exact hex form. Two aggregates are byte-identical exactly when
// their fingerprints match; the determinism gates compare these.
func (a *Aggregate) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sessions=%d met=%d quar=%d restarts=%d adapt=%d faults=%d cpanic=%d cstall=%d\n",
		a.Sessions, a.GoalMet, a.Quarantines, a.Restarts, a.Adaptations, a.FaultEvents,
		a.ContainedPanics, a.ContainedStalls)
	for _, s := range []struct {
		name string
		sk   *Sketch
	}{{"residual", a.Residual}, {"sessionmin", a.SessionMin}, {"startmin", a.StartMin}} {
		fmt.Fprintf(&b, "%s n=%d", s.name, s.sk.Count())
		for q := 0; q <= 100; q += 5 {
			fmt.Fprintf(&b, " %x", s.sk.Quantile(float64(q)/100))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "energy=%s retryJ=%s\n", a.Energy.hex(), a.RetryJ.hex())
	for _, k := range sortedKeysAgg(a.ByPrincipal) {
		fmt.Fprintf(&b, "principal %s=%s\n", k, a.ByPrincipal[k].hex())
	}
	for _, grp := range []struct {
		label string
		m     map[string]*GroupAgg
	}{{"class", a.ByClass}, {"behavior", a.ByBehavior}} {
		for _, k := range sortedKeysGroup(grp.m) {
			g := grp.m[k]
			fmt.Fprintf(&b, "%s %s sessions=%d met=%d p50=%x p95=%x p99=%x energy=%s\n",
				grp.label, k, g.Sessions, g.GoalMet,
				g.Residual.Quantile(0.50), g.Residual.Quantile(0.95), g.Residual.Quantile(0.99),
				g.Energy.hex())
		}
	}
	return b.String()
}

func (a Agg) hex() string {
	return fmt.Sprintf("n=%d sum=%x min=%x max=%x", a.Count, a.Sum, a.Min, a.Max)
}

// sessionOutcome is what the runner extracts from one finished goal run
// before the rig is garbage: the scalars the reduction folds, plus the
// per-principal energy ledger flattened into parallel slices in sorted
// principal order.
type sessionOutcome struct {
	Met         bool
	Residual    float64
	Drained     float64
	RetryJ      float64
	Quarantined int
	Restarts    int
	Adaptations int
	FaultEvents int
	Elapsed     time.Duration
	Principals  []string
	PrincipalJ  []float64
	// Contained is the sentinel name (chaos.SentinelPanic or
	// chaos.SentinelStall) when the runner's fence recovered the session,
	// with Detail the triage text; empty for sessions that completed.
	Contained string
	Detail    string
}
