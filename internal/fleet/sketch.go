// Package fleet simulates large device populations: N independent device
// rigs (each a private kernel, per the experiment scheduler's private-rig
// contract) are driven from a shared seeded population model — a
// device-class mix over hardware power-profile variants, a user-behavior
// mix over workload intensity and application subsets, and staggered
// session start/stop churn — and reduced into mergeable streaming
// aggregates, so a million-device soak runs in O(workers) memory and ends
// in a fleet scorecard with percentile dashboards.
//
// Everything derives deterministically from one fleet seed: session i of a
// run is a pure function of (population, seed, i), shard aggregates fold
// sessions in index order, and shards merge in fixed shard order, so a
// fleet scorecard is byte-identical at any -parallel width.
package fleet

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// The quantile sketch: a log-linear histogram in the HDR-histogram family.
// Positive values are bucketed by power-of-two octave and a linear
// sub-bucket within the octave, so the representative value of a bucket is
// within a fixed relative error of every value it absorbs. Counts are
// integers, which makes Merge exactly commutative and associative — the
// property the fleet reduction needs for byte-identical scorecards at any
// worker count.
const (
	// sketchSubBits fixes the sub-bucket resolution: 1<<sketchSubBits
	// linear sub-buckets per octave, for a relative quantile error bound
	// of 1/(2<<sketchSubBits) (see Sketch.RelErrBound).
	sketchSubBits = 5
	sketchSub     = 1 << sketchSubBits

	// Octaves below sketchMinExp (values under ~5e-7) collapse into the
	// bottom bucket; octaves at or above sketchMaxExp (values over ~1e12)
	// clamp into the top one. Fleet metrics — joules, seconds, rates —
	// live comfortably inside that range.
	sketchMinExp = -21
	sketchMaxExp = 40

	sketchBuckets = (sketchMaxExp - sketchMinExp + 1) * sketchSub
)

// Sketch is a mergeable quantile sketch over float64 observations. The
// zero value is not usable; create one with NewSketch.
type Sketch struct {
	pos  [sketchBuckets]int64 // positive values, ascending magnitude
	neg  [sketchBuckets]int64 // negative values, ascending magnitude
	zero int64                // exact zeros (and values too small to bucket)
	n    int64
}

// NewSketch returns an empty sketch.
func NewSketch() *Sketch { return &Sketch{} }

// bucketOf maps a positive magnitude to its bucket index.
func bucketOf(v float64) int {
	if math.IsInf(v, 0) {
		return sketchBuckets - 1
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	if exp < sketchMinExp {
		return 0
	}
	if exp > sketchMaxExp {
		return sketchBuckets - 1
	}
	sub := int((frac - 0.5) * 2 * sketchSub)
	if sub >= sketchSub {
		sub = sketchSub - 1
	}
	return (exp-sketchMinExp)*sketchSub + sub
}

// bucketMid returns the representative (midpoint) value of a bucket.
func bucketMid(idx int) float64 {
	exp := idx/sketchSub + sketchMinExp
	sub := idx % sketchSub
	frac := 0.5 + (float64(sub)+0.5)/(2*sketchSub)
	return math.Ldexp(frac, exp)
}

// Observe adds one value. NaN observations are ignored; infinities clamp
// into the extreme buckets.
func (s *Sketch) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	s.n++
	switch {
	case v > 0:
		s.pos[bucketOf(v)]++
	case v < 0:
		s.neg[bucketOf(-v)]++
	default:
		s.zero++
	}
}

// Merge folds o into s. Bucket counts add, so merge is exactly commutative
// and associative: merge(a,b) and merge(b,a) are byte-identical.
func (s *Sketch) Merge(o *Sketch) {
	for i := range s.pos {
		s.pos[i] += o.pos[i]
		s.neg[i] += o.neg[i]
	}
	s.zero += o.zero
	s.n += o.n
}

// Count reports how many observations the sketch has absorbed.
func (s *Sketch) Count() int64 { return s.n }

// RelErrBound is the sketch's relative quantile error bound: every
// reported quantile is within this fraction of some observed value at most
// one rank away from the requested one.
func (s *Sketch) RelErrBound() float64 { return 1.0 / (2 * sketchSub) }

// ApproxSum estimates the sum of all observations from bucket midpoints —
// within RelErrBound of the true sum when all observations are positive.
func (s *Sketch) ApproxSum() float64 {
	var total float64
	for i := sketchBuckets - 1; i >= 0; i-- {
		if s.neg[i] > 0 {
			total -= float64(s.neg[i]) * bucketMid(i)
		}
	}
	for i := 0; i < sketchBuckets; i++ {
		if s.pos[i] > 0 {
			total += float64(s.pos[i]) * bucketMid(i)
		}
	}
	return total
}

// sketchJSON is the sparse wire form of a Sketch for the fleet shard
// journal: only occupied buckets, keyed by decimal bucket index. Counts
// are integers, so the round trip is exact and a journaled shard resumes
// to byte-identical fingerprints.
type sketchJSON struct {
	Pos  map[string]int64 `json:"pos,omitempty"`
	Neg  map[string]int64 `json:"neg,omitempty"`
	Zero int64            `json:"zero,omitempty"`
	N    int64            `json:"n"`
}

func sparse(buckets *[sketchBuckets]int64) map[string]int64 {
	var m map[string]int64
	for i, c := range buckets {
		if c != 0 {
			if m == nil {
				m = make(map[string]int64)
			}
			m[strconv.Itoa(i)] = c
		}
	}
	return m
}

func unsparse(m map[string]int64, buckets *[sketchBuckets]int64) error {
	//odylint:allow mapiter order-independent: keys map to distinct buckets, and any malformed key aborts the decode
	for k, c := range m {
		i, err := strconv.Atoi(k)
		if err != nil || i < 0 || i >= sketchBuckets {
			return fmt.Errorf("fleet: sketch bucket %q outside [0,%d)", k, sketchBuckets)
		}
		buckets[i] = c
	}
	return nil
}

// MarshalJSON encodes the sketch sparsely (see sketchJSON).
func (s *Sketch) MarshalJSON() ([]byte, error) {
	return json.Marshal(sketchJSON{Pos: sparse(&s.pos), Neg: sparse(&s.neg), Zero: s.zero, N: s.n})
}

// UnmarshalJSON decodes the sparse form, replacing the sketch's contents.
func (s *Sketch) UnmarshalJSON(b []byte) error {
	var j sketchJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*s = Sketch{zero: j.Zero, n: j.N}
	if err := unsparse(j.Pos, &s.pos); err != nil {
		return err
	}
	return unsparse(j.Neg, &s.neg)
}

// Quantile returns the q-th quantile (q in [0,1]) by nearest rank: the
// representative value of the bucket holding rank round(q*(n-1)). An empty
// sketch reports 0.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(s.n-1) + 0.5)
	// Ascending value order: negatives from largest magnitude down, then
	// zero, then positives from smallest magnitude up.
	var cum int64
	for i := sketchBuckets - 1; i >= 0; i-- {
		cum += s.neg[i]
		if cum > rank {
			return -bucketMid(i)
		}
	}
	cum += s.zero
	if cum > rank {
		return 0
	}
	for i := 0; i < sketchBuckets; i++ {
		cum += s.pos[i]
		if cum > rank {
			return bucketMid(i)
		}
	}
	// Unreachable: the cumulative count reaches n, and rank < n.
	return 0
}
