package fleet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"odyssey/internal/app/env"
	"odyssey/internal/chaos"
	"odyssey/internal/experiment"
	"odyssey/internal/faults"
	"odyssey/internal/smartbattery"
)

// TestSketchJSONRoundTrip: the sparse wire form reproduces the sketch
// exactly — the property fleet resume leans on for byte-identical merges.
func TestSketchJSONRoundTrip(t *testing.T) {
	s := NewSketch()
	for _, v := range []float64{0, 1, 1, -3.5, 1e-9, 7e11, 42.42, -0.001, 0} {
		s.Observe(v)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	got := NewSketch()
	if err := json.Unmarshal(b, got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("sketch diverged across the JSON round trip:\n got %+v\nwant %+v", got, s)
	}
	// Out-of-range bucket keys are a decode error, not silent corruption.
	if err := json.Unmarshal([]byte(`{"pos":{"999999":1},"n":1}`), NewSketch()); err == nil {
		t.Fatal("out-of-range bucket index decoded without error")
	}
}

// TestAggregateJSONRoundTrip: a populated aggregate survives the journal's
// JSON round trip with an identical fingerprint.
func TestAggregateJSONRoundTrip(t *testing.T) {
	a := NewAggregate()
	sessions := []Session{
		{Class: "phone", Behavior: "commuter", Goal: 40 * time.Minute, Start: 3 * time.Minute},
		{Class: "tablet", Behavior: "idle", Goal: 2 * time.Hour, Start: 45 * time.Minute},
		{Class: "phone", Behavior: "heavy", Goal: time.Hour, Start: 0},
	}
	outs := []sessionOutcome{
		{Met: true, Residual: 120.5, Drained: 900.25, RetryJ: 1.5,
			Principals: []string{"video", "web"}, PrincipalJ: []float64{500.125, 400.0625}},
		{Met: false, Residual: 0, Drained: 4000, Quarantined: 1, Restarts: 2,
			Principals: []string{"web"}, PrincipalJ: []float64{4000}},
		{Contained: chaos.SentinelPanic, Detail: "planted"},
	}
	for i := range sessions {
		a.observe(sessions[i], outs[i])
	}
	if a.ContainedPanics != 1 {
		t.Fatalf("contained panics %d, want 1", a.ContainedPanics)
	}
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	got := &Aggregate{}
	if err := json.Unmarshal(b, got); err != nil {
		t.Fatal(err)
	}
	if !got.wellFormed() {
		t.Fatal("decoded aggregate is not well-formed")
	}
	if got.Fingerprint() != a.Fingerprint() {
		t.Fatalf("fingerprint diverged across the JSON round trip:\n got %s\nwant %s",
			got.Fingerprint(), a.Fingerprint())
	}
	// A replayed aggregate must also merge exactly like the original.
	m1, m2 := NewAggregate(), NewAggregate()
	m1.Merge(a)
	m2.Merge(got)
	if m1.Fingerprint() != m2.Fingerprint() {
		t.Fatal("merging a replayed aggregate diverges from merging the original")
	}
}

// plantFault returns a GoalOptions fault binder materializing one planted
// injector of the given kind.
func plantFault(kind string, delay time.Duration) func(*env.Rig, *smartbattery.Battery, int64) *faults.Plan {
	spec := faults.PlanSpec{
		Name: "planted", Seed: 1,
		Injectors: []faults.InjectorSpec{{Kind: kind, MeanUp: faults.Dur(delay)}},
	}
	return func(rig *env.Rig, bat *smartbattery.Battery, seed int64) *faults.Plan {
		pl, err := spec.Plan(rig.K, chaos.BindRig(rig, bat, nil))
		if err != nil {
			panic(err)
		}
		return pl
	}
}

// TestFleetContainsPanicsAndStalls: one session panics in a process, one
// livelocks; the fleet run completes, counts both under the containment
// counters, and keeps their partial metrics out of the reduction.
func TestFleetContainsPanicsAndStalls(t *testing.T) {
	mutateGoalOptions = func(i int, opt *experiment.GoalOptions) {
		switch i {
		case 1:
			opt.Faults = plantFault(faults.KindTestProcPanic, time.Second)
		case 2:
			opt.Faults = plantFault(faults.KindTestLivelock, time.Second)
			opt.StallBound = 50_000
		}
	}
	defer func() { mutateGoalOptions = nil }()

	var progress strings.Builder
	res, err := Run(RunOptions{
		Population: DefaultPopulation(), Seed: 11, Devices: 4, Shards: 2,
		Progress: &progress,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Agg
	if a.Sessions != 4 {
		t.Fatalf("sessions %d, want 4", a.Sessions)
	}
	if a.ContainedPanics != 1 || a.ContainedStalls != 1 {
		t.Fatalf("contained panics=%d stalls=%d, want 1 and 1", a.ContainedPanics, a.ContainedStalls)
	}
	if a.Energy.Count != 2 {
		t.Fatalf("energy folded %d sessions, want 2 (contained sessions excluded)", a.Energy.Count)
	}
	if a.SessionMin.Count() != 4 {
		t.Fatalf("session-length sketch folded %d, want all 4", a.SessionMin.Count())
	}
	for _, want := range []string{"contained panic in session 1", "contained stall in session 2"} {
		if !strings.Contains(progress.String(), want) {
			t.Errorf("progress output missing %q:\n%s", want, progress.String())
		}
	}
	card := res.ScorecardString(false)
	if !strings.Contains(card, "contained: panics=1 stalls=1") {
		t.Errorf("scorecard missing containment line:\n%s", card)
	}
}

// TestFleetJournalResumeByteIdentical is the fleet resume gate: a run
// killed after two shards, resumed against its journal, must merge to the
// exact fingerprint and scorecard of an uninterrupted run.
func TestFleetJournalResumeByteIdentical(t *testing.T) {
	old := experiment.Parallelism()
	defer experiment.SetParallelism(old)
	experiment.SetParallelism(1) // serial: shards complete in index order

	base := RunOptions{Population: DefaultPopulation(), Seed: 7, Devices: 12, Shards: 4}
	full, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	journal := filepath.Join(t.TempDir(), "run.jsonl")
	interrupted := base
	interrupted.Journal = journal
	polls := 0
	interrupted.Stop = func() bool { polls++; return polls > 2 }
	part, err := Run(interrupted)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Interrupted || part.RanShards != 2 || part.SkippedShards != 2 {
		t.Fatalf("interrupted run: ran=%d skipped=%d interrupted=%v, want 2/2/true",
			part.RanShards, part.SkippedShards, part.Interrupted)
	}
	if !strings.Contains(part.ScorecardString(false), "PARTIAL: 2 of 4 shards") {
		t.Fatal("partial scorecard missing the PARTIAL marker")
	}

	resumed := base
	resumed.Journal = journal
	resumed.Resume = true
	res, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplayedShards != 2 || res.RanShards != 2 || res.Interrupted {
		t.Fatalf("resumed run: replayed=%d ran=%d interrupted=%v, want 2/2/false",
			res.ReplayedShards, res.RanShards, res.Interrupted)
	}
	if res.Agg.Fingerprint() != full.Agg.Fingerprint() {
		t.Fatalf("resumed aggregate diverges from the uninterrupted run:\n--- resumed\n%s--- full\n%s",
			res.Agg.Fingerprint(), full.Agg.Fingerprint())
	}
	if res.ScorecardString(true) != full.ScorecardString(true) {
		t.Fatal("resumed scorecard is not byte-identical to the uninterrupted run")
	}

	// A torn final line — the write a crash interrupted — is skipped, and
	// the journal now holds every shard, so a second resume re-runs nothing.
	f, err := os.OpenFile(journal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"shard":3,"agg":{"Sess`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	res2, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ReplayedShards != 4 || res2.RanShards != 0 {
		t.Fatalf("second resume: replayed=%d ran=%d, want 4/0", res2.ReplayedShards, res2.RanShards)
	}
	if res2.Agg.Fingerprint() != full.Agg.Fingerprint() {
		t.Fatal("fully-replayed aggregate diverges from the uninterrupted run")
	}

	// A journal from a different geometry is refused wholesale: resume
	// warns, starts the journal over, and re-runs every shard.
	other := base
	other.Seed = 8
	other.Journal = journal
	other.Resume = true
	var progress strings.Builder
	other.Progress = &progress
	res3, err := Run(other)
	if err != nil {
		t.Fatal(err)
	}
	if res3.ReplayedShards != 0 || res3.RanShards != 4 {
		t.Fatalf("mismatched-geometry resume: replayed=%d ran=%d, want 0/4", res3.ReplayedShards, res3.RanShards)
	}
	if !strings.Contains(progress.String(), "does not match run geometry") {
		t.Fatal("mismatched-geometry resume did not warn")
	}
}
