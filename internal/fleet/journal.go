package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// The fleet shard journal: a crash-safe record of completed shard
// reductions. The first line is a header pinning the run geometry —
// population name, seed, device count, shard count — and every line after
// it is one shard's full Aggregate, appended and fsync'd the moment the
// shard finishes. Shards complete in worker order, but merge order is
// always shard-index order, so a run killed mid-flight and resumed with
// -resume merges journaled shards with freshly-run ones into the exact
// aggregate an uninterrupted run produces: sketches serialize as integer
// bucket counts and floats in Go's shortest round-trip form, so nothing is
// lost crossing the file.
//
// A journal whose header does not match the requested geometry belongs to
// a different run; resume refuses its entries (with a warning) and starts
// the journal over rather than merge incompatible shards.

// journalHeader pins the geometry a journal's shard entries belong to.
type journalHeader struct {
	Population string `json:"population"`
	Seed       int64  `json:"seed"`
	Devices    int    `json:"devices"`
	Shards     int    `json:"shards"`
}

// shardEntry is one completed shard's reduction.
type shardEntry struct {
	Shard int        `json:"shard"`
	Agg   *Aggregate `json:"agg"`
}

// wellFormed guards a decoded aggregate against nil sketches from a
// truncated or foreign journal entry.
func (a *Aggregate) wellFormed() bool {
	if a.Residual == nil || a.SessionMin == nil || a.StartMin == nil {
		return false
	}
	for _, m := range []map[string]*GroupAgg{a.ByClass, a.ByBehavior} {
		//odylint:allow mapiter order-independent predicate: false iff any entry is nil, whatever the visit order
		for _, g := range m {
			if g == nil || g.Residual == nil {
				return false
			}
		}
	}
	//odylint:allow mapiter order-independent predicate: false iff any entry is nil, whatever the visit order
	for _, p := range a.ByPrincipal {
		if p == nil {
			return false
		}
	}
	return true
}

// fleetJournal appends shard entries, one fsync'd line each, serialized
// across the worker pool.
type fleetJournal struct {
	mu sync.Mutex
	f  *os.File
}

// openFleetJournal opens the journal for hdr's geometry. With resume on
// and an existing journal whose header matches, the completed shard
// aggregates are returned and the file opened for append; otherwise the
// file is truncated and a fresh header written.
func openFleetJournal(path string, hdr journalHeader, resume bool) (*fleetJournal, map[int]*Aggregate, []string, error) {
	var replayed map[int]*Aggregate
	var warnings []string
	if resume {
		var err error
		replayed, warnings, err = readFleetJournal(path, hdr)
		if err != nil {
			return nil, nil, warnings, err
		}
	}
	flags := os.O_CREATE | os.O_WRONLY
	if replayed != nil {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, nil, warnings, err
	}
	j := &fleetJournal{f: f}
	if flags&os.O_TRUNC != 0 {
		if err := j.writeLine(hdr); err != nil {
			_ = f.Close()
			return nil, nil, warnings, err
		}
	}
	return j, replayed, warnings, nil
}

func (j *fleetJournal) writeLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

// append journals one completed shard; the entry is durable (fsync'd)
// before the shard is published to the reduction.
func (j *fleetJournal) append(shard int, agg *Aggregate) error {
	return j.writeLine(shardEntry{Shard: shard, Agg: agg})
}

func (j *fleetJournal) close() error { return j.f.Close() }

// readFleetJournal loads completed shard aggregates for hdr's geometry.
// A missing or empty journal, or one whose header mismatches, returns a
// nil map (caller starts the journal over). The last entry for a shard
// wins; unparsable or malformed lines — normally only a torn final line
// from a crash mid-append — are skipped with a warning.
func readFleetJournal(path string, hdr journalHeader) (map[int]*Aggregate, []string, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	defer func() { _ = f.Close() }() // read-only; nothing to flush
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, nil, sc.Err()
	}
	var got journalHeader
	if err := json.Unmarshal(sc.Bytes(), &got); err != nil || got != hdr {
		return nil, []string{fmt.Sprintf(
			"journal %s: header %+v does not match run geometry %+v; starting the journal over", path, got, hdr)}, nil
	}
	replayed := make(map[int]*Aggregate)
	var warnings []string
	line := 1
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e shardEntry
		if err := json.Unmarshal(raw, &e); err != nil || e.Agg == nil || !e.Agg.wellFormed() {
			warnings = append(warnings, fmt.Sprintf("journal %s line %d: skipping malformed shard entry", path, line))
			continue
		}
		if e.Shard < 0 || e.Shard >= hdr.Shards {
			warnings = append(warnings, fmt.Sprintf("journal %s line %d: shard %d outside geometry; skipping", path, line, e.Shard))
			continue
		}
		replayed[e.Shard] = e.Agg
	}
	if err := sc.Err(); err != nil {
		return nil, warnings, err
	}
	return replayed, warnings, nil
}
