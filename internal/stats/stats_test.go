package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !approx(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !approx(got, 2.13809, 1e-4) {
		t.Errorf("StdDev = %v, want ~2.138", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of one sample should be 0")
	}
	if StdDev(nil) != 0 {
		t.Error("StdDev of empty should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max should be 0")
	}
}

func TestTCritical90(t *testing.T) {
	// n=5 trials -> df=4 -> 2.132 (used for the paper's 5-trial bars).
	if got := TCritical90(4); got != 2.132 {
		t.Errorf("t(4) = %v, want 2.132", got)
	}
	// n=10 trials -> df=9 -> 1.833.
	if got := TCritical90(9); got != 1.833 {
		t.Errorf("t(9) = %v, want 1.833", got)
	}
	if got := TCritical90(500); got != 1.645 {
		t.Errorf("t(500) = %v, want normal fallback 1.645", got)
	}
	if !math.IsInf(TCritical90(0), 1) {
		t.Error("t(0) should be +Inf")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{10, 12, 11, 13, 14}
	s := Summarize(xs)
	if s.N != 5 || s.Min != 10 || s.Max != 14 {
		t.Fatalf("summary fields wrong: %+v", s)
	}
	if !approx(s.Mean, 12, 1e-12) {
		t.Fatalf("mean %v", s.Mean)
	}
	wantCI := 2.132 * StdDev(xs) / math.Sqrt(5)
	if !approx(s.CI90, wantCI, 1e-9) {
		t.Fatalf("CI90 %v, want %v", s.CI90, wantCI)
	}
}

func TestFitLineExact(t *testing.T) {
	// E_t = 50 + 5.6*t, the paper's think-time model with P_B = 5.6 W.
	xs := []float64{0, 5, 10, 20}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 50 + 5.6*x
	}
	f := FitLine(xs, ys)
	if !approx(f.Slope, 5.6, 1e-9) || !approx(f.Intercept, 50, 1e-9) {
		t.Fatalf("fit = %+v", f)
	}
	if !approx(f.R2, 1.0, 1e-9) {
		t.Fatalf("R2 = %v, want 1", f.R2)
	}
}

func TestFitLineNoisy(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1.1, 2.9, 5.2, 6.8, 9.1}
	f := FitLine(xs, ys)
	if f.Slope < 1.8 || f.Slope > 2.2 {
		t.Fatalf("slope %v out of expected band", f.Slope)
	}
	if f.R2 < 0.98 {
		t.Fatalf("R2 %v too low for nearly-linear data", f.R2)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	f := FitLine([]float64{3, 3, 3}, []float64{1, 2, 3})
	if f.Slope != 0 || !approx(f.Intercept, 2, 1e-12) {
		t.Fatalf("degenerate fit = %+v", f)
	}
	one := FitLine([]float64{1}, []float64{7})
	if one.Slope != 0 || one.Intercept != 7 {
		t.Fatalf("single-point fit = %+v", one)
	}
}

func TestFitLineMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	FitLine([]float64{1, 2}, []float64{1})
}

func TestNormalizeRange(t *testing.T) {
	lo, hi := NormalizeRange([]float64{50, 90}, []float64{100, 100})
	if !approx(lo, 0.5, 1e-12) || !approx(hi, 0.9, 1e-12) {
		t.Fatalf("range %v-%v", lo, hi)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero denominator should be 0")
	}
	if !approx(Ratio(3, 4), 0.75, 1e-12) {
		t.Error("Ratio(3,4)")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 50); !approx(got, 3, 1e-12) {
		t.Errorf("median = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 25); !approx(got, 2, 1e-12) {
		t.Errorf("p25 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

// Property: mean is within [min, max]; stddev is non-negative; CI shrinks
// as more identical batches are appended (sqrt-n behaviour).
func TestSummaryProperties(t *testing.T) {
	prop := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		if s.StdDev < 0 || s.CI90 < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: FitLine recovers arbitrary affine relations exactly.
func TestFitLineRecoversAffine(t *testing.T) {
	prop := func(a8, b8 int8, n8 uint8) bool {
		n := int(n8%8) + 3
		a, b := float64(a8)/4, float64(b8)/4
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(i)
			ys[i] = a + b*float64(i)
		}
		f := FitLine(xs, ys)
		return approx(f.Intercept, a, 1e-6) && approx(f.Slope, b, 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPercentileEdges pins the boundary and interpolation behaviour down:
// out-of-range p clamps to the extremes, a single sample answers every p,
// and mid-rank queries interpolate linearly between closest ranks.
func TestPercentileEdges(t *testing.T) {
	if got := Percentile(nil, 0); got != 0 {
		t.Errorf("empty p0 = %v", got)
	}
	if got := Percentile([]float64{7}, 0); got != 7 {
		t.Errorf("single-sample p0 = %v", got)
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("single-sample p50 = %v", got)
	}
	if got := Percentile([]float64{7}, 100); got != 7 {
		t.Errorf("single-sample p100 = %v", got)
	}
	xs := []float64{1, 2}
	if got := Percentile(xs, 50); !approx(got, 1.5, 1e-12) {
		t.Errorf("[1,2] p50 = %v, want 1.5", got)
	}
	if got := Percentile([]float64{1, 2, 3, 4}, 25); !approx(got, 1.75, 1e-12) {
		t.Errorf("[1..4] p25 = %v, want 1.75", got)
	}
	if got := Percentile(xs, -10); got != 1 {
		t.Errorf("p<0 should clamp to min, got %v", got)
	}
	if got := Percentile(xs, 250); got != 2 {
		t.Errorf("p>100 should clamp to max, got %v", got)
	}
	// Percentile must not reorder the caller's slice.
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", orig)
	}
}

// TestSummarizeEdges: the empty and single-sample summaries must be usable —
// no NaNs leaking into tables, no confidence interval claimed from one
// observation.
func TestSummarizeEdges(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.CI90 != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	if math.IsNaN(s.Mean) || math.IsNaN(s.StdDev) {
		t.Fatalf("empty summary has NaNs: %+v", s)
	}
	s = Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Min != 42 || s.Max != 42 {
		t.Fatalf("single-sample summary: %+v", s)
	}
	if s.CI90 != 0 {
		t.Fatalf("one sample cannot support a confidence interval: CI90=%v", s.CI90)
	}
	if got := s.String(); got != "42.0 ± 0.0" {
		t.Fatalf("String() = %q (doc promises one decimal place)", got)
	}
}
