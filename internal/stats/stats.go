// Package stats provides the small statistical toolkit the paper's
// evaluation uses: means, sample standard deviations, 90% confidence
// intervals on the mean (Student's t), least-squares linear fits for the
// think-time energy model E_t = E_0 + t*P_B, and normalization helpers for
// the summary tables.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs.
// It returns 0 for fewer than two samples.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// tCritical90 holds two-sided 90% critical values of Student's t
// distribution indexed by degrees of freedom (1-based). Values beyond the
// table fall back to the normal approximation 1.645.
var tCritical90 = []float64{
	0,                                                             // df = 0 (unused)
	6.314,                                                         // df = 1
	2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, // df 2-10
	1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, // df 11-20
	1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697, // df 21-30
}

// TCritical90 returns the two-sided 90% Student's t critical value for the
// given degrees of freedom.
func TCritical90(df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(tCritical90) {
		return tCritical90[df]
	}
	return 1.645
}

// Summary describes a sample: the quantities printed in the paper's tables
// and error bars.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI90   float64 // half-width of the 90% confidence interval on the mean
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
	if s.N >= 2 {
		s.CI90 = TCritical90(s.N-1) * s.StdDev / math.Sqrt(float64(s.N))
	}
	return s
}

// String renders "mean ± ci" with one decimal place.
func (s Summary) String() string {
	return fmt.Sprintf("%.1f ± %.1f", s.Mean, s.CI90)
}

// LinearFit is a least-squares line y = Intercept + Slope*x.
type LinearFit struct {
	Intercept float64
	Slope     float64
	R2        float64
}

// FitLine computes the least-squares fit of ys against xs. It panics if the
// slices differ in length, and returns a degenerate fit (slope 0) when fewer
// than two distinct x values are given.
func FitLine(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) {
		//odylint:allow panicfree mismatched series is a caller bug; invariant guard
		panic(fmt.Sprintf("stats: FitLine length mismatch %d vs %d", len(xs), len(ys)))
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return LinearFit{Intercept: Mean(ys)}
	}
	mx, my := Mean(xs), Mean(ys)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	//odylint:allow floateq exact zero iff all x values identical; degenerate-fit guard
	if sxx == 0 {
		return LinearFit{Intercept: my}
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		ssRes := 0.0
		for i := range xs {
			r := ys[i] - fit.At(xs[i])
			ssRes += r * r
		}
		fit.R2 = 1 - ssRes/syy
	} else {
		fit.R2 = 1
	}
	_ = n
	return fit
}

// At evaluates the fitted line at x.
func (f LinearFit) At(x float64) float64 { return f.Intercept + f.Slope*x }

// Ratio returns num/den, or 0 when den is 0 (used for normalized tables).
func Ratio(num, den float64) float64 {
	//odylint:allow floateq guard against exact division by zero
	if den == 0 {
		return 0
	}
	return num / den
}

// NormalizeRange returns the min and max of each value in xs divided by the
// matching value in base — the "0.66-0.92"-style entries in the paper's
// Figure 16. The slices must have equal length.
func NormalizeRange(xs, base []float64) (lo, hi float64) {
	if len(xs) != len(base) {
		//odylint:allow panicfree mismatched series is a caller bug; invariant guard
		panic(fmt.Sprintf("stats: NormalizeRange length mismatch %d vs %d", len(xs), len(base)))
	}
	ratios := make([]float64, 0, len(xs))
	for i := range xs {
		ratios = append(ratios, Ratio(xs[i], base[i]))
	}
	return Min(ratios), Max(ratios)
}

// Percentile returns the p-th percentile (0-100) of xs using linear
// interpolation between closest ranks. It copies xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}
