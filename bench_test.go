// Package odyssey_test holds the benchmark harness: one testing.B benchmark
// per table and figure of the paper's evaluation, each regenerating the
// corresponding result from the simulated testbed and reporting the
// headline quantities as custom metrics. Run everything with:
//
//	go test -bench=. -benchmem
//
// Figures can also be printed in full with cmd/odyssey-sim.
package odyssey_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"odyssey/internal/app/env"
	"odyssey/internal/app/video"
	"odyssey/internal/chaos"
	"odyssey/internal/experiment"
	"odyssey/internal/powerscope"
	"odyssey/internal/sim"
)

// benchTrials keeps each benchmark iteration affordable; cmd/odyssey-sim
// runs the full five- and ten-trial sweeps.
const benchTrials = 2

// reportSavings records a bar's savings range versus a reference bar as
// benchmark metrics (percent).
func reportSavings(b *testing.B, g *experiment.Grid, label string, bar, ref int) {
	b.Helper()
	lo, hi := g.SavingsRange(bar, ref)
	b.ReportMetric(lo*100, label+"_min_%")
	b.ReportMetric(hi*100, label+"_max_%")
}

// BenchmarkFigure2Profile regenerates the PowerScope example profile.
func BenchmarkFigure2Profile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prof := experiment.Figure2(int64(i + 1))
		b.ReportMetric(prof.TotalEnergy, "profile_J")
	}
}

// BenchmarkFigure4Components regenerates the component power table.
func BenchmarkFigure4Components(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Figure4()
		b.ReportMetric(float64(len(t.Rows)), "rows")
	}
}

// BenchmarkFigure6Video regenerates the video fidelity experiment.
func BenchmarkFigure6Video(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := experiment.Figure6(benchTrials)
		reportSavings(b, g, "hwonly_vs_base", 1, 0)
		reportSavings(b, g, "combined_vs_hwonly", g.BarIndex(experiment.BarCombined), 1)
	}
}

// BenchmarkFigure8Speech regenerates the speech recognition experiment.
func BenchmarkFigure8Speech(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := experiment.Figure8(benchTrials)
		reportSavings(b, g, "hwonly_vs_base", 1, 0)
		reportSavings(b, g, "hybridreduced_vs_hwonly", g.BarIndex(experiment.BarHybridReduced), 1)
	}
}

// BenchmarkFigure10Map regenerates the map viewer experiment.
func BenchmarkFigure10Map(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := experiment.Figure10(benchTrials)
		reportSavings(b, g, "hwonly_vs_base", 1, 0)
		reportSavings(b, g, "combined_vs_hwonly", g.BarIndex(experiment.BarCroppedSecondary), 1)
	}
}

// BenchmarkFigure11ThinkTime regenerates the map think-time sweep and
// reports the fitted slopes of the linear model E_t = E_0 + t*P_B.
func BenchmarkFigure11ThinkTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiment.Figure11(benchTrials)
		b.ReportMetric(s.SlopeW[0], "baseline_slope_W")
		b.ReportMetric(s.SlopeW[1], "hwonly_slope_W")
		b.ReportMetric(s.SlopeW[2], "lowest_slope_W")
	}
}

// BenchmarkFigure13Web regenerates the Web browsing experiment.
func BenchmarkFigure13Web(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := experiment.Figure13(benchTrials)
		reportSavings(b, g, "hwonly_vs_base", 1, 0)
		reportSavings(b, g, "jpeg5_vs_hwonly", g.BarIndex("JPEG-5"), 1)
	}
}

// BenchmarkFigure14ThinkTime regenerates the Web think-time sweep.
func BenchmarkFigure14ThinkTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiment.Figure14(benchTrials)
		b.ReportMetric(s.SlopeW[0], "baseline_slope_W")
		b.ReportMetric(s.SlopeW[1], "hwonly_slope_W")
	}
}

// BenchmarkFigure15Concurrency regenerates the concurrency experiment and
// reports the extra energy of concurrent execution per case.
func BenchmarkFigure15Concurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := experiment.Figure15(benchTrials)
		b.ReportMetric(rs[0].ExtraEnergyFraction()*100, "baseline_extra_%")
		b.ReportMetric(rs[1].ExtraEnergyFraction()*100, "hwonly_extra_%")
		b.ReportMetric(rs[2].ExtraEnergyFraction()*100, "lowest_extra_%")
	}
}

// BenchmarkFigure16Summary regenerates the normalized summary table and
// reports the paper's headline means.
func BenchmarkFigure16Summary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiment.Figure16(1)
		b.ReportMetric(s.MeanFidelity, "mean_fidelity_norm")
		b.ReportMetric(s.MeanCombined, "mean_combined_norm")
	}
}

// BenchmarkFigure18Zoned regenerates the zoned-backlighting projection.
func BenchmarkFigure18Zoned(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Figure18(1)
		v := rows[0]
		rel8 := 1 - (v.Combined[2][0]+v.Combined[2][1])/(v.Combined[0][0]+v.Combined[0][1])
		b.ReportMetric(rel8*100, "video_lowest_8zone_saving_%")
	}
}

// BenchmarkFigure19Trace regenerates the goal-directed adaptation traces.
func BenchmarkFigure19Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := experiment.Figure19()
		met := 0.0
		for _, r := range rs {
			if r.Met {
				met++
			}
		}
		b.ReportMetric(met/float64(len(rs))*100, "goals_met_%")
		b.ReportMetric(float64(len(rs[0].Trace)), "trace_points")
	}
}

// BenchmarkFigure20Goals regenerates the goal-directed summary.
func BenchmarkFigure20Goals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Figure20(benchTrials)
		met, residual := 0.0, 0.0
		for _, r := range rows {
			met += r.MetPct / float64(len(rows))
			residual += r.Residual.Mean / float64(len(rows))
		}
		b.ReportMetric(met, "goals_met_%")
		b.ReportMetric(residual, "mean_residual_J")
	}
}

// BenchmarkFigure21HalfLife regenerates the half-life sensitivity table.
func BenchmarkFigure21HalfLife(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Figure21(benchTrials)
		b.ReportMetric(rows[0].Residual.Mean, "hl1%_residual_J")
		b.ReportMetric(rows[2].Residual.Mean, "hl10%_residual_J")
	}
}

// BenchmarkFigure22Bursty regenerates the longer-duration bursty trials.
func BenchmarkFigure22Bursty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := experiment.Figure22(1)
		met := 0.0
		for _, r := range rs {
			if r.Met {
				met++
			}
		}
		b.ReportMetric(met/float64(len(rs))*100, "goals_met_%")
	}
}

// BenchmarkAblations runs the design-choice ablations of DESIGN.md.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Ablations(1)
		b.ReportMetric(rows[0].Adaptations.Mean, "paper_adaptations")
		b.ReportMetric(rows[2].Adaptations.Mean, "nohysteresis_adaptations")
		b.ReportMetric(rows[3].Adaptations.Mean, "uncapped_adaptations")
	}
}

// BenchmarkGoalRuntimeBand measures the feasible battery-life band the
// goal-directed engine works within (paper: 19:27 to 27:06).
func BenchmarkGoalRuntimeBand(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hi := experiment.RuntimeAtFixedFidelity(int64(i+1), experiment.Figure20InitialEnergy, false)
		lo := experiment.RuntimeAtFixedFidelity(int64(i+1), experiment.Figure20InitialEnergy, true)
		b.ReportMetric(hi.Seconds(), "highest_fidelity_s")
		b.ReportMetric(lo.Seconds(), "lowest_fidelity_s")
		b.ReportMetric((lo.Seconds()/hi.Seconds()-1)*100, "extension_%")
	}
	_ = time.Second
}

// ---------------------------------------------------------------------------
// Simulator performance benchmarks: how fast the substrate itself runs.
// These are conventional micro-benchmarks (ns/op meaningful), unlike the
// figure benchmarks above whose value is the reported metrics.

// BenchmarkKernelEvents measures raw event dispatch throughput.
func BenchmarkKernelEvents(b *testing.B) {
	k := sim.NewKernel(1)
	for i := 0; i < b.N; i++ {
		k.After(time.Duration(i%1000)*time.Microsecond, func() {})
	}
	b.ResetTimer()
	k.Run(0)
}

// BenchmarkProcessSwitch measures the process handshake cost.
func BenchmarkProcessSwitch(b *testing.B) {
	k := sim.NewKernel(1)
	k.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	k.Run(0)
}

// BenchmarkPSResource measures processor-sharing bookkeeping with a
// churning job set: 64 jobs run concurrently, and each completion enqueues
// the next, so cost stays linear in b.N (the per-event work is O(active
// jobs), which this keeps bounded).
func BenchmarkPSResource(b *testing.B) {
	k := sim.NewKernel(1)
	r := sim.NewPSResource(k, "cpu", 1000.0)
	remaining := b.N
	var enqueue func()
	enqueue = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		r.UseAsync("x", 0.5+float64(remaining%7), enqueue)
	}
	b.ResetTimer()
	for i := 0; i < 64 && remaining > 0; i++ {
		enqueue()
	}
	k.Run(0)
}

// BenchmarkVideoPlaybackSim measures full-stack simulation speed: one
// 60-second clip per iteration, reporting the virtual-to-wall speedup.
func BenchmarkVideoPlaybackSim(b *testing.B) {
	start := time.Now()
	for i := 0; i < b.N; i++ {
		rig := env.NewRig(int64(i+1), 1)
		rig.EnablePowerMgmt()
		clip := video.Clip{Name: "bench", Length: 60 * time.Second}
		rig.K.Spawn("w", func(p *sim.Proc) {
			video.PlayTrack(rig, p, clip, func() video.Track { return video.TrackBase })
		})
		rig.K.Run(0)
	}
	wall := time.Since(start).Seconds()
	if wall > 0 {
		b.ReportMetric(float64(b.N)*60/wall, "simsec/sec")
	}
}

// BenchmarkGoalRunSim measures one complete 20-minute goal-directed run
// per iteration (monitor at 10 Hz, four applications, full workload).
func BenchmarkGoalRunSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.RunGoal(experiment.GoalOptions{
			Seed:          int64(i + 1),
			InitialEnergy: experiment.Figure20InitialEnergy,
			Goal:          20 * time.Minute,
		})
		if !r.Met {
			b.Fatal("goal missed during benchmark")
		}
	}
}

// BenchmarkPowerScopeSampling measures profiler overhead at 600 Hz.
func BenchmarkPowerScopeSampling(b *testing.B) {
	rig := env.NewRig(1, 1)
	pf := powerscope.NewProfiler(rig.K, rig.M.Acct, 1666*time.Microsecond, 0)
	pf.Start()
	horizon := time.Duration(b.N) * 1666 * time.Microsecond
	rig.K.At(horizon+time.Millisecond, func() { rig.K.Stop() })
	b.ResetTimer()
	rig.K.Run(0)
	pf.Stop()
}

// BenchmarkRunGridParallel measures the trial scheduler's scaling: the same
// Figure 6 grid (4 clips x 6 bars, 5 trials per cell = 120 independent
// simulations) under worker pools of increasing width. On a multicore
// machine the 4-worker case should run at least twice as fast as serial;
// on a single-core box the sub-benchmarks coincide, which is itself the
// point — the pool adds no overhead worth measuring. Output is
// byte-identical at every width, so this is pure wall-clock.
func BenchmarkRunGridParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			experiment.SetParallelism(workers)
			defer experiment.SetParallelism(1)
			for i := 0; i < b.N; i++ {
				g := experiment.Figure6(5)
				if len(g.Objects) == 0 {
					b.Fatal("empty grid")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// BENCH_kernel.json: the machine-readable kernel-performance artifact.
// ROADMAP item 2 (10-100x scenarios/sec) needs a tracked number to move;
// this emits it. The schema is documented in EXPERIMENTS.md under
// "Artifact: BENCH_kernel.json".

// benchKernelReport is the BENCH_kernel.json schema. Add fields, never
// rename: CI diffs these artifacts across commits.
type benchKernelReport struct {
	Schema     string           `json:"schema"` // "bench_kernel/v1"
	GoVersion  string           `json:"go_version"`
	Arch       string           `json:"arch"`
	Benchmarks []benchKernelRow `json:"benchmarks"`
	// ScenariosPerSec is end-to-end chaos-scenario throughput: full
	// adversarial runs (faults, misbehavior, sentinels) per wall second.
	ScenariosPerSec float64 `json:"scenarios_per_sec"`
	Scenarios       int     `json:"scenarios"`
	// SoakScenariosPerSec is the same metric measured through the chaos
	// soak driver (scenario generation + sentinel audit + result merge on
	// the experiment worker pool), the path the long-running soak harness
	// and the fleet plane actually exercise.
	SoakScenariosPerSec float64 `json:"soak_scenarios_per_sec"`
	SoakScenarios       int     `json:"soak_scenarios"`
}

type benchKernelRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Ops         int     `json:"ops"`
}

// TestEmitBenchKernel writes BENCH_kernel.json when BENCH_KERNEL_OUT names
// a path (and skips otherwise, so ordinary `go test` stays fast):
//
//	BENCH_KERNEL_OUT=BENCH_kernel.json go test -run TestEmitBenchKernel .
func TestEmitBenchKernel(t *testing.T) {
	out := os.Getenv("BENCH_KERNEL_OUT")
	if out == "" {
		t.Skip("set BENCH_KERNEL_OUT=path to emit the kernel benchmark artifact")
	}

	rep := benchKernelReport{
		Schema:    "bench_kernel/v1",
		GoVersion: runtime.Version(),
		Arch:      runtime.GOOS + "/" + runtime.GOARCH,
	}
	for _, bm := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"KernelEvents", BenchmarkKernelEvents},
		{"ProcessSwitch", BenchmarkProcessSwitch},
		{"PSResource", BenchmarkPSResource},
	} {
		fn := bm.fn
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		rep.Benchmarks = append(rep.Benchmarks, benchKernelRow{
			Name:        bm.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Ops:         r.N,
		})
	}

	const nScenarios = 6
	start := time.Now()
	for seed := int64(1); seed <= nScenarios; seed++ {
		if _, err := chaos.Run(chaos.Generate(seed)); err != nil {
			t.Fatalf("chaos scenario seed %d: %v", seed, err)
		}
	}
	wall := time.Since(start).Seconds()
	rep.Scenarios = nScenarios
	if wall > 0 {
		rep.ScenariosPerSec = nScenarios / wall
	}

	// Soak-path throughput: the same scenarios driven through chaos.Soak,
	// which is what the odyssey-chaos soak harness and the fleet plane run.
	const nSoak = 12
	start = time.Now()
	sum, err := chaos.Soak(chaos.SoakOptions{Seed: 1, Count: nSoak})
	if err != nil {
		t.Fatalf("soak batch: %v", err)
	}
	if !sum.OK() {
		t.Fatalf("soak batch found %d sentinel failure(s)", len(sum.Failures))
	}
	soakWall := time.Since(start).Seconds()
	rep.SoakScenarios = nSoak
	if soakWall > 0 {
		rep.SoakScenariosPerSec = nSoak / soakWall
	}

	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d benchmarks, %.1f scenarios/sec, %.1f soak scenarios/sec",
		out, len(rep.Benchmarks), rep.ScenariosPerSec, rep.SoakScenariosPerSec)
}
