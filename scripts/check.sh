#!/usr/bin/env sh
# check.sh - the repo's standing verification gate, mirrored by CI
# (.github/workflows/ci.yml). Run it from anywhere inside the module.
#
#   scripts/check.sh         full suite
#   scripts/check.sh fast    skip the -race run (quick pre-commit loop)
#
# Gates, in order:
#   1. go build ./...                      everything compiles
#   2. go vet ./...                        stock static analysis
#   3. odylint -json -baseline ./...       domain-specific invariants
#                                          (determinism taint, map-iteration
#                                          order, hot-path allocations, float
#                                          equality, kernel handshake, panics,
#                                          errors); fails on any finding not
#                                          grandfathered in odylint.baseline
#                                          and on expired/stale entries, and
#                                          warns on entries expiring within
#                                          30 days; report: odylint-report.json
#   4. go test ./...                       tier-1 tests
#   5. go test -race ./...                 data-race gate over the full module
#   6. go test -tags odysseydebug ...      energy-conservation runtime
#                                          assertions cross-checking the
#                                          exact integrator
#   7. go test -fuzz FuzzPathHandling      short fuzz budget over odfs path
#                                          handling (seed corpus + 5s)
#   8. odyssey-sim -figure resilience      smoke: the fault-injection plane
#                                          end to end on one trial
#   9. supervision smoke (-race)           the application-supervision plane
#                                          end to end under the mid
#                                          misbehavior ladder
#  10. disarmed determinism gate           battery-goal with the supervisor
#                                          and offload plane disarmed must be
#                                          byte-identical run to run and
#                                          carry no trace of either plane
#  11. offload smoke + armed determinism   the crash rung of the offload
#                                          ladder under the cost model must
#                                          meet the goal with every stranded
#                                          offload degraded to local, and an
#                                          armed battery-goal run must be
#                                          byte-identical at the same seed
#  12. parallel/cache smoke                -parallel 4 under -race must be
#                                          byte-identical to serial, and a
#                                          warm-cache rerun must serve every
#                                          cell from the cache
#  13. chaos smoke + corpus replay         a bounded soak (fixed seed, 20
#                                          scenarios) under -race must pass
#                                          every invariant sentinel, and
#                                          every previously-failing scenario
#                                          in the regression corpus must
#                                          replay clean
#  14. containment smoke + resume replay   a -race soak over the containment
#                                          corpus (planted process-panic and
#                                          livelock scenarios among healthy
#                                          ones) must finish, report exactly
#                                          panic=1 stall=1 with shrunk
#                                          repros, and a journal truncated
#                                          mid-run must -resume to a
#                                          byte-identical report
#  15. fleet smoke + determinism replay    a 600-session -race fleet soak
#                                          must produce a scorecard
#                                          byte-identical to a serial
#                                          replay of the same seed, and a
#                                          shard journal truncated mid-run
#                                          must -resume to the same bytes
#  16. BENCH_kernel.json                   kernel performance artifact
#                                          (ns/op, allocs/op, scenarios/sec)
#                                          tracking ROADMAP item 2; schema in
#                                          EXPERIMENTS.md
#  17. benchgate                           perf-regression gate: fresh
#                                          artifact vs BENCH_baseline.json;
#                                          >25% ns/op or allocs/op growth
#                                          fails (ns/op gated only on a
#                                          matching arch + Go version)
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> odylint -json -baseline odylint.baseline ./..."
go run ./cmd/odylint -json -baseline odylint.baseline -expiry-warn 30 ./... > odylint-report.json || {
    echo "FAIL: odylint found non-baselined findings or baseline rot (details in odylint-report.json)" >&2
    exit 1
}

echo "==> go test ./..."
go test ./...

if [ "${1:-}" != "fast" ]; then
    echo "==> go test -race ./..."
    go test -race ./...
fi

echo "==> go test -tags odysseydebug (power, hw, experiment, integration)"
go test -tags odysseydebug ./internal/power/... ./internal/hw/... ./internal/experiment/... ./internal/integration/...

if [ "${1:-}" != "fast" ]; then
    echo "==> go test -fuzz FuzzPathHandling -fuzztime 5s ./internal/odfs"
    go test -run '^$' -fuzz FuzzPathHandling -fuzztime 5s ./internal/odfs

    echo "==> resilience smoke (odyssey-sim -figure resilience -trials 1)"
    go run ./cmd/odyssey-sim -figure resilience -trials 1

    echo "==> supervision smoke (-race, mid misbehavior ladder)"
    go run -race ./cmd/odyssey-sim -figure supervision -misbehave mid

    echo "==> disarmed determinism gate (battery-goal, same seed, byte-identical)"
    supdir=$(mktemp -d)
    go run ./cmd/battery-goal -goal 26m -seed 7 > "$supdir/a.txt"
    go run ./cmd/battery-goal -goal 26m -seed 7 > "$supdir/b.txt"
    cmp "$supdir/a.txt" "$supdir/b.txt" || {
        echo "FAIL: disarmed same-seed runs differ" >&2; rm -rf "$supdir"; exit 1; }
    if grep -qi 'supervis' "$supdir/a.txt"; then
        echo "FAIL: disarmed run mentions the supervision plane" >&2
        rm -rf "$supdir"; exit 1
    fi
    if grep -qi 'offload' "$supdir/a.txt"; then
        echo "FAIL: disarmed run mentions the offload plane" >&2
        rm -rf "$supdir"; exit 1
    fi
    rm -rf "$supdir"

    echo "==> offload smoke (cost model on the crash rung) + armed determinism"
    offdir=$(mktemp -d)
    go run ./cmd/odyssey-sim -figure offload -offload-rung auto:crash > "$offdir/rung.txt"
    grep -q 'met=true' "$offdir/rung.txt" || {
        echo "FAIL: crash-rung goal missed under the cost model:" >&2
        cat "$offdir/rung.txt" >&2; rm -rf "$offdir"; exit 1; }
    grep -Eq 'fallbacks [1-9]' "$offdir/rung.txt" || {
        echo "FAIL: crash rung degraded no offloads to local:" >&2
        cat "$offdir/rung.txt" >&2; rm -rf "$offdir"; exit 1; }
    go run ./cmd/battery-goal -goal 26m -seed 7 -offload 3 -offload-load 0.5 > "$offdir/a.txt"
    go run ./cmd/battery-goal -goal 26m -seed 7 -offload 3 -offload-load 0.5 > "$offdir/b.txt"
    cmp "$offdir/a.txt" "$offdir/b.txt" || {
        echo "FAIL: armed same-seed offload runs differ" >&2; rm -rf "$offdir"; exit 1; }
    grep -q 'offload principal' "$offdir/a.txt" || {
        echo "FAIL: armed run reports no offload principal line" >&2; rm -rf "$offdir"; exit 1; }
    rm -rf "$offdir"

    echo "==> parallel equivalence + warm-cache smoke (fig6, -race)"
    smokedir=$(mktemp -d)
    trap 'rm -rf "$smokedir"' EXIT
    go run ./cmd/odyssey-sim -figure fig6 -trials 2 -parallel 1 -csv > "$smokedir/serial.csv"
    go run -race ./cmd/odyssey-sim -figure fig6 -trials 2 -parallel 4 \
        -cache-dir "$smokedir/cache" -csv > "$smokedir/parallel.csv"
    cmp "$smokedir/serial.csv" "$smokedir/parallel.csv" || {
        echo "FAIL: -parallel 4 output differs from serial" >&2; exit 1; }
    go run -race ./cmd/odyssey-sim -figure fig6 -trials 2 -parallel 4 \
        -cache-dir "$smokedir/cache" -csv -progress > "$smokedir/warm.csv" 2> "$smokedir/progress.log"
    cmp "$smokedir/serial.csv" "$smokedir/warm.csv" || {
        echo "FAIL: warm-cache output differs from serial" >&2; exit 1; }
    if grep '^cell ' "$smokedir/progress.log" | grep -qv 'cache hit'; then
        echo "FAIL: warm-cache rerun recomputed cells:" >&2
        grep '^cell ' "$smokedir/progress.log" | grep -v 'cache hit' >&2
        exit 1
    fi
    grep -q 'cache hit' "$smokedir/progress.log" || {
        echo "FAIL: warm-cache rerun produced no cache hits" >&2; exit 1; }

    echo "==> chaos smoke (-race, 20 scenarios, fixed seed) + corpus replay"
    go run -race ./cmd/odyssey-chaos -soak 20 -seed 7 -out "$smokedir/chaos-failures"
    go run ./cmd/odyssey-chaos -corpus internal/chaos/testdata/corpus -v

    echo "==> containment smoke (-race, planted panic + livelock) + kill-and-resume replay"
    status=0
    go run -race ./cmd/odyssey-chaos -soak-corpus internal/chaos/testdata/containment \
        -out "$smokedir/quarantine" -journal "$smokedir/contain.jsonl" \
        -report "$smokedir/contain_full.txt" > /dev/null || status=$?
    [ "$status" -eq 1 ] || {
        echo "FAIL: containment soak exited $status, want 1 (exactly the two planted failures)" >&2; exit 1; }
    grep -qx 'violations: panic=1 stall=1' "$smokedir/contain_full.txt" || {
        echo "FAIL: containment soak did not report exactly panic=1 stall=1:" >&2
        cat "$smokedir/contain_full.txt" >&2; exit 1; }
    grep -q '  repro: go run ./cmd/odyssey-chaos -scenario ' "$smokedir/contain_full.txt" || {
        echo "FAIL: containment soak reported no shrunk repro commands" >&2; exit 1; }
    # Simulate a mid-run kill: keep the first two journal entries plus a torn
    # line, then -resume must replay them and re-render identical bytes.
    head -2 "$smokedir/contain.jsonl" > "$smokedir/contain_cut.jsonl"
    printf '{"i":2,"id":"torn' >> "$smokedir/contain_cut.jsonl"
    status=0
    go run -race ./cmd/odyssey-chaos -soak-corpus internal/chaos/testdata/containment \
        -out "$smokedir/quarantine" -journal "$smokedir/contain_cut.jsonl" -resume \
        -report "$smokedir/contain_resumed.txt" > /dev/null || status=$?
    [ "$status" -eq 1 ] || {
        echo "FAIL: resumed containment soak exited $status, want 1" >&2; exit 1; }
    cmp "$smokedir/contain_full.txt" "$smokedir/contain_resumed.txt" || {
        echo "FAIL: resumed soak report differs from the uninterrupted one" >&2; exit 1; }

    echo "==> fleet smoke (-race, 600 sessions) + fixed-seed determinism replay"
    go run -race ./cmd/odyssey-fleet -devices 600 -seed 7 -parallel 4 \
        -journal "$smokedir/fleet.jsonl" > "$smokedir/fleet_race.txt"
    go run ./cmd/odyssey-fleet -devices 600 -seed 7 -parallel 1 > "$smokedir/fleet_serial.txt"
    cmp "$smokedir/fleet_race.txt" "$smokedir/fleet_serial.txt" || {
        echo "FAIL: fleet scorecard differs across parallelism/replay" >&2; exit 1; }
    # Fleet kill-and-resume: keep the geometry header plus 20 shard entries
    # and a torn line; the resumed scorecard must be byte-identical.
    head -21 "$smokedir/fleet.jsonl" > "$smokedir/fleet_cut.jsonl"
    printf '{"shard":63,"agg":{' >> "$smokedir/fleet_cut.jsonl"
    go run ./cmd/odyssey-fleet -devices 600 -seed 7 -parallel 4 \
        -journal "$smokedir/fleet_cut.jsonl" -resume > "$smokedir/fleet_resumed.txt"
    cmp "$smokedir/fleet_race.txt" "$smokedir/fleet_resumed.txt" || {
        echo "FAIL: resumed fleet scorecard differs from the uninterrupted one" >&2; exit 1; }

    echo "==> kernel performance artifact (BENCH_kernel.json)"
    BENCH_KERNEL_OUT=BENCH_kernel.json go test -run TestEmitBenchKernel .

    echo "==> perf-regression gate (benchgate vs BENCH_baseline.json)"
    go run ./cmd/benchgate -fresh BENCH_kernel.json -baseline BENCH_baseline.json
fi

echo "ALL CHECKS PASSED"
