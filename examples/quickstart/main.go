// Quickstart: the smallest complete energy-aware application.
//
// It builds the simulated mobile computer, defines a toy adaptive
// application with three fidelity levels, registers it with Odyssey, and
// asks for a battery-duration goal the application can only meet by
// degrading. Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"odyssey/internal/app/env"
	"odyssey/internal/core"
	"odyssey/internal/power"
	"odyssey/internal/sim"
)

// renderer is a toy adaptive application: it "renders" frames continuously,
// spending more CPU at higher fidelity.
type renderer struct {
	level int
}

func (r *renderer) Name() string { return "renderer" }
func (r *renderer) Levels() []string {
	return []string{"wireframe", "shaded", "ray-traced"}
}
func (r *renderer) Level() int { return r.level }
func (r *renderer) SetLevel(l int) {
	if l < 0 {
		l = 0
	}
	if l > 2 {
		l = 2
	}
	r.level = l
}

// cpuPerFrame returns the work each frame costs at the current fidelity.
func (r *renderer) cpuPerFrame() float64 {
	return []float64{0.05, 0.25, 0.60}[r.level]
}

func main() {
	// 1. Build the testbed: a ThinkPad-560X-class machine with hardware
	// power management enabled.
	rig := env.NewRig(1, 1)
	rig.EnablePowerMgmt()

	// 2. Attach an energy supply and the Odyssey energy monitor.
	supply := power.NewSupply(rig.M.Acct, 6500) // 6.5 kJ
	monitor := core.NewEnergyMonitor(rig.V, rig.M.Acct, supply, core.DefaultEnergyConfig())

	// 3. Register the application with a priority and set the goal.
	app := &renderer{level: 2}
	rig.V.RegisterApp(app, 1)
	goal := 10 * time.Minute
	monitor.SetGoal(goal)
	monitor.Start()

	// 4. Run the application: one frame per second, at whatever fidelity
	// Odyssey directs.
	rig.K.Spawn("renderer", func(p *sim.Proc) {
		for p.Now() < goal && !supply.Depleted() {
			start := p.Now()
			rig.M.CPU.Run(p, "renderer", app.cpuPerFrame())
			p.SleepUntil(start + time.Second)
		}
	})
	var survived bool
	var residualAtGoal float64
	rig.K.At(goal, func() {
		survived = !supply.Depleted()
		residualAtGoal = supply.Residual()
		monitor.Stop()
		rig.K.Stop()
	})
	rig.K.Run(goal + time.Minute)

	// 5. Report.
	fmt.Printf("Goal: %v with %.0f J\n", goal, supply.Initial())
	fmt.Printf("Survived: %v (residual %.0f J at the goal)\n", survived, residualAtGoal)
	fmt.Printf("Final fidelity: %s (level %d of %d)\n",
		app.Levels()[app.Level()], app.Level(), len(app.Levels())-1)
	fmt.Printf("Smoothed power estimate: %.2f W\n", monitor.SmoothedPower())
	fmt.Printf("Adaptation upcalls: %d degrades, %d upgrades\n", monitor.Degrades(), monitor.Upgrades())
}
