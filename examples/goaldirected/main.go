// Goaldirected: the paper's Section 5 scenario end to end — four
// concurrent adaptive applications (background video, speech, map, web)
// under Odyssey's goal-directed energy adaptation, with a user-specified
// battery duration.
//
// Run it with:
//
//	go run ./examples/goaldirected
package main

import (
	"fmt"
	"time"

	"odyssey/internal/app/env"
	"odyssey/internal/core"
	"odyssey/internal/experiment"
	"odyssey/internal/power"
	"odyssey/internal/workload"
)

func main() {
	const initialEnergy = experiment.Figure20InitialEnergy
	goal := 24 * time.Minute

	rig := env.NewRig(3, 1)
	rig.EnablePowerMgmt()
	apps := workload.NewApps(rig)
	regs := apps.Register()
	apps.SetAllHighest()

	supply := power.NewSupply(rig.M.Acct, initialEnergy)
	monitor := core.NewEnergyMonitor(rig.V, rig.M.Acct, supply, core.DefaultEnergyConfig())
	monitor.SetGoal(goal)
	monitor.OnInfeasible = func() {
		fmt.Printf("[%6.0fs] Odyssey: goal infeasible even at lowest fidelity\n", rig.K.Now().Seconds())
	}
	monitor.Start()

	// Narrate fidelity changes once a minute.
	var narrate func()
	narrate = func() {
		fmt.Printf("[%6.0fs] residual %6.0f J, demand %6.0f J, levels:", rig.K.Now().Seconds(),
			supply.Residual(), monitor.PredictedDemand())
		for _, r := range regs {
			fmt.Printf(" %s=%s", r.App.Name(), r.App.Levels()[r.App.Level()])
		}
		fmt.Println()
		rig.K.After(3*time.Minute, narrate)
	}
	rig.K.After(time.Second, narrate)

	done := false
	rig.K.At(goal, func() {
		done = true
		fmt.Printf("[%6.0fs] goal reached with %.0f J to spare (%.1f%% of supply)\n",
			rig.K.Now().Seconds(), supply.Residual(), supply.Residual()/initialEnergy*100)
		monitor.Stop()
		rig.K.Stop()
	})
	apps.StartGoalWorkload(25*time.Second, func() bool { return done || supply.Depleted() })

	rig.K.Run(goal + time.Minute)
	if supply.Depleted() && !done {
		fmt.Printf("[%6.0fs] supply exhausted before the goal\n", rig.K.Now().Seconds())
	}
	fmt.Println("adaptations per application:")
	for _, r := range regs {
		fmt.Printf("  %-8s %d\n", r.App.Name(), r.Adaptations)
	}
}
