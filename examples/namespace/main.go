// Namespace: the Odyssey VFS interface end to end — typed data objects
// registered by path, opened with fidelity annotations, and operated on
// through type-specific operations (tsops) dispatched to wardens, exactly
// as the paper's VFS integration exposes them to applications.
//
// Run it with:
//
//	go run ./examples/namespace
package main

import (
	"fmt"
	"time"

	"odyssey/internal/app/env"
	"odyssey/internal/app/mapview"
	"odyssey/internal/app/speech"
	"odyssey/internal/app/video"
	"odyssey/internal/app/web"
	"odyssey/internal/odfs"
	"odyssey/internal/sim"
)

func main() {
	rig := env.NewRig(11, 1)
	rig.EnablePowerMgmt()

	// Mounting the wardens: constructing each application registers its
	// warden with the viceroy, which doubles as the namespace mount table.
	video.NewPlayer(rig)
	speech.NewRecognizer(rig)
	mapview.NewViewer(rig)
	web.NewBrowser(rig)

	fs := odfs.New(rig.V)
	must := func(_ *odfs.Object, err error) {
		if err != nil {
			panic(err)
		}
	}
	for _, m := range mapview.StandardMaps() {
		must(fs.Register(odfs.Object{Path: "/odyssey/maps/" + m.City, Type: "map", Data: m}))
	}
	for _, u := range speech.StandardUtterances() {
		must(fs.Register(odfs.Object{Path: "/odyssey/speech/" + u.Name, Type: "speech", Data: u}))
	}
	must(fs.Register(odfs.Object{
		Path: "/odyssey/video/trailer", Type: "video",
		Data: video.Clip{Name: "trailer", Length: 15 * time.Second},
	}))

	paths, _ := fs.Walk("/odyssey")
	fmt.Printf("Mounted wardens: %v\n", rig.V.Wardens())
	fmt.Printf("Namespace (%d objects):\n", len(paths))
	for _, p := range paths {
		fmt.Println("  " + p)
	}

	rig.K.Spawn("user", func(p *sim.Proc) {
		// Fetch the same map at two fidelities through one handle.
		h, err := fs.Open("/odyssey/maps/San Jose", 3)
		if err != nil {
			panic(err)
		}
		for _, level := range []int{3, 0} {
			h.SetFidelity(level)
			cp := rig.M.Acct.Checkpoint()
			bytes, err := h.TSOp(p, "fetch", mapview.FetchArgs{Think: 3 * time.Second})
			if err != nil {
				panic(err)
			}
			fmt.Printf("[%5.1fs] fetch %s at fidelity %d: %.0f bytes, %.1f J\n",
				p.Now().Seconds(), h.Object().Path, level, bytes, cp.Since())
		}
		h.Close()

		// Recognize an utterance through the namespace, hybrid mode.
		hu, err := fs.Open("/odyssey/speech/Utterance 2", 0)
		if err != nil {
			panic(err)
		}
		cp := rig.M.Acct.Checkpoint()
		model, err := hu.TSOp(p, "recognize", speech.RecognizeArgs{Mode: speech.Hybrid})
		if err != nil {
			panic(err)
		}
		fmt.Printf("[%5.1fs] recognized %s with model %v: %.1f J\n",
			p.Now().Seconds(), hu.Object().Path, model, cp.Since())
		hu.Close()

		// Play the trailer at lowest fidelity.
		hv, err := fs.Open("/odyssey/video/trailer", 0)
		if err != nil {
			panic(err)
		}
		cp = rig.M.Acct.Checkpoint()
		track, err := hv.TSOp(p, "play", nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("[%5.1fs] played %s on track %q: %.1f J\n",
			p.Now().Seconds(), hv.Object().Path, track, cp.Since())
	})
	rig.K.Run(0)
	fmt.Printf("total energy: %.1f J over %v\n", rig.M.Acct.TotalEnergy(), rig.K.Now().Round(time.Millisecond))
}
