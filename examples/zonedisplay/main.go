// Zonedisplay: the Section 4 zoned-backlighting projection — play the same
// video on conventional, 4-zone and 8-zone displays at full and lowest
// fidelity, and print the projected savings.
//
// Run it with:
//
//	go run ./examples/zonedisplay
package main

import (
	"fmt"
	"time"

	"odyssey/internal/app/env"
	"odyssey/internal/app/video"
	"odyssey/internal/sim"
)

func measure(zones int, track video.Track) float64 {
	rig := env.NewRig(5, zones)
	rig.EnablePowerMgmt()
	rig.ZonedPolicy = zones > 1
	clip := video.Clip{Name: "demo", Length: 60 * time.Second}
	var energy float64
	rig.K.Spawn("w", func(p *sim.Proc) {
		cp := rig.M.Acct.Checkpoint()
		video.PlayTrack(rig, p, clip, func() video.Track { return track })
		energy = cp.Since()
	})
	rig.K.Run(0)
	return energy
}

func main() {
	fmt.Println("Projected energy for 60 s of video under zoned backlighting")
	fmt.Println("(covered zones bright, peripheral zones dim; hardware power mgmt on)")
	fmt.Println()
	fmt.Printf("%-22s %12s %12s %12s\n", "Fidelity", "No zones (J)", "4 zones (J)", "8 zones (J)")
	for _, track := range []video.Track{video.TrackBase, video.TrackCombined} {
		base := measure(1, track)
		z4 := measure(4, track)
		z8 := measure(8, track)
		fmt.Printf("%-22s %12.1f %12.1f %12.1f\n", track.Name, base, z4, z8)
		fmt.Printf("%-22s %12s %11.1f%% %11.1f%%\n", "  savings vs no zones", "",
			(1-z4/base)*100, (1-z8/base)*100)
	}
	fmt.Println()
	fmt.Println("The window of the lowest-fidelity track lights a single zone, so the")
	fmt.Println("savings grow as fidelity drops — zoned backlighting rewards adaptation.")
}
