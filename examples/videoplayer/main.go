// Videoplayer: the Odyssey video player adapting to both bandwidth and
// energy, the two resources the paper's Odyssey monitors.
//
// The player streams a clip while (a) the wireless bandwidth drops halfway
// through — delivered to the application through the viceroy's resource
// expectation upcall, exactly like the original Odyssey bandwidth
// adaptation — and (b) an energy goal forces further degradation. Run it
// with:
//
//	go run ./examples/videoplayer
package main

import (
	"fmt"
	"time"

	"odyssey/internal/app/env"
	"odyssey/internal/app/video"
	"odyssey/internal/core"
	"odyssey/internal/power"
	"odyssey/internal/sim"
)

func main() {
	rig := env.NewRig(7, 1)
	rig.EnablePowerMgmt()

	player := video.NewPlayer(rig)
	clip := video.Clip{Name: "demo", Length: 3 * time.Minute}

	// Bandwidth adaptation: the monitor publishes the link's fair share
	// as a viceroy resource; the player registers expectations on it and
	// re-picks its track on every upcall (the original Odyssey protocol,
	// built into the player).
	rig.StartBandwidthMonitor(time.Second)
	if err := player.EnableBandwidthAdaptation(env.BandwidthResource); err != nil {
		panic(err)
	}
	prevTrack := player.Track().Name
	watch := rig.K.Every(time.Second, func() {
		if name := player.Track().Name; name != prevTrack {
			fmt.Printf("[%6.1fs] bandwidth adaptation -> track %q\n",
				rig.K.Now().Seconds(), name)
			prevTrack = name
		}
	})
	watch.Start()

	// Energy adaptation: a small supply with a goal that outlasts the
	// clip at full fidelity.
	supply := power.NewSupply(rig.M.Acct, 2600)
	monitor := core.NewEnergyMonitor(rig.V, rig.M.Acct, supply, core.DefaultEnergyConfig())
	rig.V.RegisterApp(player, 1)
	monitor.SetGoal(clip.Length)
	monitor.Start()

	// Halfway through, the link quality collapses to a third.
	rig.K.At(90*time.Second, func() {
		rig.Net.Link().SetCapacity(rig.M.Prof.LinkBandwidth / 3)
	})

	rig.K.Spawn("viewer", func(p *sim.Proc) {
		fmt.Printf("[%6.1fs] playing %q at track %q\n", p.Now().Seconds(), clip.Name, player.Track().Name)
		player.Play(p, clip)
		fmt.Printf("[%6.1fs] playback complete at track %q\n", p.Now().Seconds(), player.Track().Name)
		monitor.Stop()
		watch.Stop()
		rig.K.Stop()
	})
	rig.K.Run(clip.Length * 2)

	fmt.Printf("energy used: %.0f J (residual %.0f J); adaptations: %d down, %d up\n",
		supply.Consumed(), supply.Residual(), monitor.Degrades(), monitor.Upgrades())
}
